// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment function is pure (deterministic in its
// options) and returns a result value whose String method renders the
// rows/series the paper reports; cmd/phi-experiments prints them and the
// repository-level benchmarks time them.
//
// The experiment index (paper artifact -> function) is:
//
//	Table 1  -> Table1        (default Cubic parameters)
//	Table 2  -> Table2        (sweep grid)
//	Fig 2a   -> Fig2a         (low-utilization Cubic sweep)
//	Fig 2b   -> Fig2b         (high-utilization Cubic sweep + loss contrast)
//	Fig 2c   -> Fig2c         (long-running flows, beta sweep)
//	Fig 3    -> Fig3          (leave-one-out stability)
//	Fig 4    -> Fig4          (incremental deployment)
//	Table 3  -> Table3        (Remy / Remy-Phi / Cubic)
//	Fig 5    -> Fig5          (unreachability detection & localization)
//	Sec 2.1  -> Sharing       (IPFIX flow-sharing CDF)
//	—        -> BuildPolicy   (distill sweeps into a Phi policy)
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// Options scale every experiment between a quick, minutes-long pass and
// the paper-fidelity configuration.
type Options struct {
	// Full selects the paper-scale configuration: the complete Table 2
	// grid, n = 8 runs, 100 long-running flows, longer horizons. The
	// default (coarse) configuration preserves every qualitative shape in
	// a fraction of the time.
	Full bool
	// Seed offsets all run seeds.
	Seed int64
	// Workers bounds the number of simulations run concurrently. 0 uses
	// GOMAXPROCS; 1 forces serial execution. Results are bit-identical
	// regardless (every run is independently seeded and stored by index).
	Workers int
	// Retrain re-derives the Remy tables before Table 3 (slow).
	Retrain bool
	// Progress, when non-nil, receives live grid-point and experiment
	// completion events (the /debug/experiments feed). Nil is fine: every
	// Progress method no-ops on a nil receiver.
	Progress *Progress
}

func (o Options) runs() int {
	if o.Full {
		return 8
	}
	return 3
}

func (o Options) duration() sim.Time {
	if o.Full {
		return 120 * sim.Second
	}
	return 40 * sim.Second
}

func (o Options) spec() phi.SweepSpec {
	if o.Full {
		return phi.Table2Spec()
	}
	return phi.CoarseSpec()
}

// sweep executes a parameter sweep with the options' parallelism and
// progress reporting attached. Method values on a nil *Progress are
// valid no-ops, so the hooks are wired unconditionally.
func (o Options) sweep(cfg phi.SweepConfig) *phi.SweepResult {
	cfg.Parallelism = o.Workers
	cfg.OnStart = o.Progress.AddPoints
	cfg.OnPoint = o.Progress.SweepPoint
	return phi.RunSweep(cfg)
}

// runParallel executes n independent scenario runs across the options'
// workers, storing results by index so the output is bit-identical to
// the serial loop it replaces. mk is called once per index, from worker
// goroutines: it must derive everything run-local (seeds, probes,
// servers) from i and capture no mutable state shared across indices.
func (o Options) runParallel(label string, n int, mk func(i int) workload.Scenario) []workload.Result {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	o.Progress.AddPoints(n)
	out := make([]workload.Result, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				begin := time.Now()
				out[i] = workload.Run(mk(i))
				o.Progress.PointDone(fmt.Sprintf("%s run %d", label, i), time.Since(begin))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// fig2Rate is the Figure 2 bottleneck rate. The paper specifies the
// Figure 1 topology but not this link's rate; 5 Mbit/s makes 500 KB
// transfers large relative to the pipe, so the default 65536-segment
// slow-start threshold overshoots the 5xBDP buffer on most connections —
// reproducing the paper's headline loss contrast (3.92% default vs 0.01%
// tuned).
const fig2Rate = 5_000_000

// Sender counts producing the paper's utilization levels under the
// Figure 2 workload (mean on 500 KB, mean off 2 s), measured on this
// simulator: ~25-30% (low) and ~60-75% (high, the paper's Figure 4 level).
const (
	lowUtilSenders  = 1
	highUtilSenders = 3
)

// fig2Scenario is the shared Figure 2 workload template.
func fig2Scenario(senders int, o Options) workload.Scenario {
	db := sim.DefaultDumbbell(senders)
	db.BottleneckRate = fig2Rate
	return workload.Scenario{
		Dumbbell:    db,
		MeanOnBytes: 500_000,
		MeanOffTime: 2 * sim.Second,
		Duration:    o.duration(),
		Warmup:      5 * sim.Second,
	}
}

// Table1Result reports the default parameters (Table 1).
type Table1Result struct {
	Defaults tcp.CubicParams
}

// Table1 regenerates Table 1.
func Table1() Table1Result {
	return Table1Result{Defaults: tcp.DefaultCubicParams()}
}

func (r Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: default TCP Cubic parameters\n")
	fmt.Fprintf(&b, "  initial_ssthresh  %d segments (arbitrarily large, RFC 5681)\n", r.Defaults.InitialSsthresh)
	fmt.Fprintf(&b, "  windowInit_       %d segments\n", r.Defaults.InitialWindow)
	fmt.Fprintf(&b, "  beta              %.1f ((1-beta) multiplicative decrease)\n", r.Defaults.Beta)
	return b.String()
}

// Table2Result reports the sweep grid (Table 2).
type Table2Result struct {
	Spec   phi.SweepSpec
	Points int
}

// Table2 regenerates Table 2.
func Table2(o Options) Table2Result {
	spec := o.spec()
	return Table2Result{Spec: spec, Points: len(spec.Points())}
}

func (r Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: Cubic-Phi parameter sweep ranges\n")
	fmt.Fprintf(&b, "  initial_ssthresh  %v segments\n", r.Spec.Ssthresh)
	fmt.Fprintf(&b, "  windowInit_       %v segments\n", r.Spec.WindowInit)
	fmt.Fprintf(&b, "  beta              %v\n", r.Spec.Beta)
	fmt.Fprintf(&b, "  grid              %d parameter combinations\n", r.Points)
	return b.String()
}

// SweepFigure is the result shape shared by Figures 2a-2c: the scatter of
// parameter settings in (throughput, queueing delay, loss) space with the
// default and optimal points called out.
type SweepFigure struct {
	Name        string
	Utilization float64
	Sweep       *phi.SweepResult
}

// Fig2a regenerates Figure 2a (low link utilization).
func Fig2a(o Options) SweepFigure {
	sc := fig2Scenario(lowUtilSenders, o)
	res := o.sweep(phi.SweepConfig{Scenario: sc, Spec: o.spec(), Runs: o.runs(), BaseSeed: 100 + o.Seed})
	return SweepFigure{Name: "Figure 2a (low utilization)", Sweep: res,
		Utilization: meanUtil(res)}
}

// Fig2b regenerates Figure 2b (high link utilization).
func Fig2b(o Options) SweepFigure {
	sc := fig2Scenario(highUtilSenders, o)
	res := o.sweep(phi.SweepConfig{Scenario: sc, Spec: o.spec(), Runs: o.runs(), BaseSeed: 200 + o.Seed})
	return SweepFigure{Name: "Figure 2b (high utilization)", Sweep: res,
		Utilization: meanUtil(res)}
}

// Fig2c regenerates Figure 2c (long-running connections, beta sweep).
func Fig2c(o Options) SweepFigure {
	senders := 20
	if o.Full {
		senders = 100 // the paper's setting
	}
	db := sim.DefaultDumbbell(senders)
	db.BottleneckRate = fig2Rate
	sc := workload.Scenario{
		Dumbbell:    db,
		LongRunning: true,
		Duration:    o.duration(),
		Warmup:      10 * sim.Second,
	}
	res := o.sweep(phi.SweepConfig{Scenario: sc, Spec: phi.BetaOnlySpec(), Runs: o.runs(), BaseSeed: 300 + o.Seed})
	return SweepFigure{Name: "Figure 2c (long-running connections)", Sweep: res,
		Utilization: meanUtil(res)}
}

func meanUtil(res *phi.SweepResult) float64 {
	var sum float64
	var n int
	for _, r := range res.Default.Runs {
		sum += r.Utilization
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (f SweepFigure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mean default-run utilization %.0f%%\n", f.Name, 100*f.Utilization)
	fmt.Fprintf(&b, "  %-30s %10s %12s %9s %9s\n", "parameters", "thr Mbps", "qdelay ms", "loss %", "power")
	row := func(tag string, p *phi.SweepPoint) {
		fmt.Fprintf(&b, "  %-30s %10.2f %12.2f %9.3f %9.2f  %s\n",
			p.Params.String(), p.MeanThroughputMbps(), p.MeanQueueDelayMs(),
			100*p.MeanLossRate(), p.MeanPower(), tag)
	}
	row("<- DEFAULT", &f.Sweep.Default)
	best := f.Sweep.Best()
	for i := range f.Sweep.Points {
		p := &f.Sweep.Points[i]
		tag := ""
		if p == best {
			tag = "<- OPTIMAL"
		}
		row(tag, p)
	}
	return b.String()
}

// Improvement summarizes optimal vs default on the headline metrics.
func (f SweepFigure) Improvement() (throughputGain, delayReduction, lossDefault, lossOptimal float64) {
	best := f.Sweep.Best()
	def := &f.Sweep.Default
	if def.MeanThroughputMbps() > 0 {
		throughputGain = best.MeanThroughputMbps() / def.MeanThroughputMbps()
	}
	if def.MeanQueueDelayMs() > 0 {
		delayReduction = 1 - best.MeanQueueDelayMs()/def.MeanQueueDelayMs()
	}
	return throughputGain, delayReduction, def.MeanLossRate(), best.MeanLossRate()
}
