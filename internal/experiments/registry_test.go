package experiments

import (
	"strings"
	"testing"
)

func TestResolveAll(t *testing.T) {
	exps, err := Resolve("all")
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, e := range exps {
		names[e.Name] = true
	}
	for _, want := range []string{"table1", "fig2a", "table3", "fig5", "sharing",
		"ablation-cadence", "ablation-buckets", "ablation-qdisc", "ablation-training"} {
		if !names[want] {
			t.Errorf("'all' missing %s", want)
		}
	}
	// The opt-in extras stay out of 'all'.
	if names["deployment"] || names["policy"] {
		t.Errorf("'all' should not include deployment/policy: %v", names)
	}
}

func TestResolveAliasAndDedupe(t *testing.T) {
	exps, err := Resolve("ablations, Ablation-Cadence")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 4 {
		t.Fatalf("got %d experiments, want 4 deduped ablations", len(exps))
	}
	if exps[0].Name != "ablation-cadence" {
		t.Errorf("order not preserved: %s first", exps[0].Name)
	}
}

func TestResolveUnknown(t *testing.T) {
	if _, err := Resolve("fig2a,fig9"); err == nil || !strings.Contains(err.Error(), "fig9") {
		t.Fatalf("err = %v, want unknown-name error naming fig9", err)
	}
	if _, err := Resolve(" , "); err == nil {
		t.Fatal("empty selection should error")
	}
}

func TestNamesCoverIndexAndAliases(t *testing.T) {
	names := Names()
	set := make(map[string]bool)
	for _, n := range names {
		set[n] = true
	}
	for _, e := range Index() {
		if !set[e.Name] {
			t.Errorf("Names() missing %s", e.Name)
		}
		if e.Run == nil || e.Summary == "" {
			t.Errorf("experiment %s incomplete", e.Name)
		}
	}
	if !set["all"] || !set["ablations"] {
		t.Error("Names() missing aliases")
	}
	// Every name Names() advertises must resolve.
	for _, n := range names {
		if _, err := Resolve(n); err != nil {
			t.Errorf("advertised name %q does not resolve: %v", n, err)
		}
	}
}
