package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/diagnosis"
	"repro/internal/ipfix"
	"repro/internal/metrics"
	"repro/internal/phi"
)

// Fig5Result is the unreachability detection/localization run.
type Fig5Result struct {
	Injected     diagnosis.Outage
	Findings     []diagnosis.Finding
	Best         *diagnosis.Finding
	Localization diagnosis.Localization
	// Series is the affected ISPxmetro aggregate around the event for
	// plotting (minute, volume) pairs.
	Series []float64
	Window [2]int
}

// Fig5 regenerates Figure 5: inject a ~2 h outage confined to one ISP in
// one metro into three days of synthetic telemetry, detect it by scanning
// sliced aggregates, and localize it.
func Fig5(o Options) Fig5Result {
	cfg := diagnosis.DefaultGenConfig()
	cfg.Seed = 1 + o.Seed
	outage := diagnosis.Outage{
		ISP: "isp-3", Metro: "seattle",
		StartMinute: 2*24*60 + 9*60, DurationMin: 120, Severity: 0.9,
	}
	cfg.Outage = &outage
	store := diagnosis.Generate(cfg)

	findings := diagnosis.Scan(store, diagnosis.DetectConfig{})
	best := diagnosis.Narrowest(findings)
	res := Fig5Result{Injected: outage, Findings: findings, Best: best}
	if best != nil {
		res.Localization = diagnosis.Localize(store, best.Event, diagnosis.LocalizeConfig{})
		// Extract the affected aggregate around the event for the figure.
		series := store.TotalWhere(func(sl diagnosis.Slice) bool {
			return sl.ISP == outage.ISP && sl.Metro == outage.Metro
		})
		lo := best.Event.Start - 180
		hi := best.Event.End + 180
		if lo < 0 {
			lo = 0
		}
		if hi > len(series) {
			hi = len(series)
		}
		res.Series = series[lo:hi]
		res.Window = [2]int{lo, hi}
	}
	return res
}

func (r Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: unreachability event detection and localization\n")
	fmt.Fprintf(&b, "  injected: isp=%s metro=%s minutes [%d, %d) severity %.0f%%\n",
		r.Injected.ISP, r.Injected.Metro, r.Injected.StartMinute,
		r.Injected.StartMinute+r.Injected.DurationMin, 100*r.Injected.Severity)
	if r.Best == nil {
		b.WriteString("  NOT DETECTED\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  detected: %v\n", *r.Best)
	fmt.Fprintf(&b, "  localized: %v (coverage service %.2f / isp %.2f / metro %.2f)\n",
		r.Localization,
		r.Localization.Coverage[diagnosis.DimService],
		r.Localization.Coverage[diagnosis.DimISP],
		r.Localization.Coverage[diagnosis.DimMetro])
	// Compact sparkline of the affected aggregate.
	if len(r.Series) > 0 {
		b.WriteString("  affected aggregate (6h window, 10-minute buckets):\n  ")
		b.WriteString(sparkline(r.Series, 10))
		b.WriteString("\n")
	}
	return b.String()
}

// sparkline renders a series as coarse unicode bars, bucketed.
func sparkline(series []float64, bucket int) string {
	bars := []rune("▁▂▃▄▅▆▇█")
	var vals []float64
	for i := 0; i < len(series); i += bucket {
		end := i + bucket
		if end > len(series) {
			end = len(series)
		}
		vals = append(vals, metrics.Mean(series[i:end]))
	}
	var lo, hi float64
	for i, v := range vals {
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(bars)-1))
		}
		sb.WriteRune(bars[idx])
	}
	return sb.String()
}

// SharingResult is the Section 2.1 flow-sharing analysis.
type SharingResult struct {
	ExportedFlows int
	Slices        int
	AtLeast5      float64
	AtLeast100    float64
	// CDF holds (others, P(X <= others)) points of the sharing CDF.
	CDF []metrics.Point
}

// Sharing regenerates the Section 2.1 measurement on the synthetic egress
// model: the fraction of sampled flows sharing their /24-minute path
// slice with at least 5 (paper: 50%) and at least 100 (paper: 12%) other
// flows, under 1-in-4096 sampling. The records make a full round trip
// through the IPFIX codec, as they would from router to collector.
func Sharing(o Options) SharingResult {
	cfg := ipfix.DefaultSynthConfig()
	cfg.Seed = 1 + o.Seed
	records := ipfix.Generate(cfg, ipfix.DefaultSamplingRate)

	// Round trip through the wire format (router export -> collector).
	enc := ipfix.NewEncoder(1)
	dec := ipfix.NewDecoder()
	var collected []ipfix.FlowRecord
	for i := 0; i < len(records); i += 500 {
		end := i + 500
		if end > len(records) {
			end = len(records)
		}
		msg, err := enc.Encode(uint32(i), records[i:end])
		if err != nil {
			panic(err)
		}
		got, err := dec.Decode(msg)
		if err != nil {
			panic(err)
		}
		collected = append(collected, got...)
	}

	a := ipfix.AnalyzeSharing(collected)
	cdf := metrics.NewCDF(a.OthersPerFlow)
	return SharingResult{
		ExportedFlows: len(collected),
		Slices:        a.Slices,
		AtLeast5:      a.FractionSharingAtLeast(5),
		AtLeast100:    a.FractionSharingAtLeast(100),
		CDF:           cdf.Points(12),
	}
}

func (r SharingResult) String() string {
	var b strings.Builder
	b.WriteString("Section 2.1: flow sharing per /24 x minute (1-in-4096 sampling)\n")
	fmt.Fprintf(&b, "  exported flows %d across %d path slices\n", r.ExportedFlows, r.Slices)
	fmt.Fprintf(&b, "  share with >= 5 other flows:   %5.1f%%  (paper: 50%%)\n", 100*r.AtLeast5)
	fmt.Fprintf(&b, "  share with >= 100 other flows: %5.1f%%  (paper: 12%%)\n", 100*r.AtLeast100)
	b.WriteString("  CDF of co-sharing flows:\n")
	for _, p := range r.CDF {
		fmt.Fprintf(&b, "    P(others <= %6.0f) = %.2f\n", p.X, p.P)
	}
	return b.String()
}

// PolicyResult is the distilled Phi policy from per-load sweeps.
type PolicyResult struct {
	Policy *phi.Policy
	Bands  []float64
}

// BuildPolicy runs sweeps at several load levels and distills them into a
// utilization-banded policy — the table the context server hands to
// Cubic-Phi senders.
func BuildPolicy(o Options) PolicyResult {
	bands := map[float64]*phi.SweepResult{}
	for _, cfg := range []struct {
		maxU    float64
		senders int
	}{
		{0.3, lowUtilSenders},
		{0.7, highUtilSenders},
		{1.01, 16},
	} {
		sc := fig2Scenario(cfg.senders, o)
		bands[cfg.maxU] = o.sweep(phi.SweepConfig{
			Scenario: sc, Spec: o.spec(), Runs: o.runs(), BaseSeed: 700 + o.Seed,
		})
	}
	pol := phi.PolicyFromSweeps(bands)
	var keys []float64
	for k := range bands {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return PolicyResult{Policy: pol, Bands: keys}
}

func (r PolicyResult) String() string {
	var b strings.Builder
	b.WriteString("Distilled Phi parameter policy (from sweeps per utilization band)\n")
	b.WriteString(r.Policy.String())
	return b.String()
}
