package experiments

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Plan([]string{"a"})
	p.StartExperiment("a")
	p.AddPoints(3)
	p.PointDone("x", time.Second)
	p.FinishExperiment("a", time.Second)
	if s := p.Snapshot(); s.Total != 0 || s.Completed != 0 {
		t.Errorf("nil progress snapshot = %+v", s)
	}
}

func TestProgressSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewProgress(reg)
	p.Plan([]string{"fig2a", "fig2b"})
	p.StartExperiment("fig2a")
	p.AddPoints(4)
	p.PointDone("pt-0", 10*time.Millisecond)
	p.PointDone("pt-1", 30*time.Millisecond)

	s := p.Snapshot()
	if s.Phase != "fig2a" {
		t.Errorf("phase = %q", s.Phase)
	}
	if s.Completed != 2 || s.Total != 4 {
		t.Errorf("grid = %d/%d, want 2/4", s.Completed, s.Total)
	}
	if len(s.Experiments) != 2 || s.Experiments[0].State != "running" || s.Experiments[1].State != "pending" {
		t.Errorf("experiments = %+v", s.Experiments)
	}
	if s.PointsPerSec <= 0 || s.EtaS <= 0 {
		t.Errorf("rate/eta missing: %+v", s)
	}
	// Slowest leaderboard is sorted descending.
	if len(s.Slowest) != 2 || s.Slowest[0].Point != "pt-1" || s.Slowest[0].Experiment != "fig2a" {
		t.Errorf("slowest = %+v", s.Slowest)
	}

	p.FinishExperiment("fig2a", 40*time.Millisecond)
	s = p.Snapshot()
	if s.Phase != "" {
		t.Errorf("phase after finish = %q", s.Phase)
	}
	if s.Experiments[0].State != "done" || s.Experiments[0].WallSeconds <= 0 {
		t.Errorf("finished experiment = %+v", s.Experiments[0])
	}

	// The telemetry registry carries the counters alongside.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"phi_experiments_points_completed_total 2",
		"phi_experiments_points_total 4",
		"phi_experiments_point_seconds_count 2",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestProgressSlowestBounded(t *testing.T) {
	p := NewProgress(nil)
	p.StartExperiment("x")
	p.AddPoints(100)
	for i := 0; i < 100; i++ {
		p.PointDone("pt", time.Duration(i)*time.Millisecond)
	}
	s := p.Snapshot()
	if len(s.Slowest) != slowestKept {
		t.Fatalf("leaderboard size %d, want %d", len(s.Slowest), slowestKept)
	}
	for i := 1; i < len(s.Slowest); i++ {
		if s.Slowest[i].WallSeconds > s.Slowest[i-1].WallSeconds {
			t.Fatalf("leaderboard not descending: %+v", s.Slowest)
		}
	}
	if s.Slowest[0].WallSeconds != 0.099 {
		t.Errorf("slowest = %v, want 99ms", s.Slowest[0].WallSeconds)
	}
}

func TestProgressHandler(t *testing.T) {
	p := NewProgress(nil)
	p.Plan([]string{"table1"})
	p.StartExperiment("table1")
	p.AddPoints(2)
	p.PointDone("pt", time.Millisecond)

	// JSON view.
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/experiments", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if s.Phase != "table1" || s.Completed != 1 || s.Total != 2 {
		t.Errorf("snapshot = %+v", s)
	}

	// Text view.
	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/experiments?format=text", nil))
	body := rec.Body.String()
	for _, want := range []string{"phase=table1", "grid 1/2", "table1", "running"} {
		if !strings.Contains(body, want) {
			t.Errorf("text view missing %q:\n%s", want, body)
		}
	}
}
