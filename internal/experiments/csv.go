package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV export: every figure result can emit the series it plots, so the
// paper's scatter plots and time series can be regenerated with any
// plotting tool (`phi-experiments -run fig2b -csv out/`).

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteCSV emits the sweep scatter: one row per parameter point (plus the
// default), with the columns Figure 2 plots — throughput, queueing delay,
// and loss rate (the paper encodes loss as marker size).
func (fg SweepFigure) WriteCSV(w io.Writer) error {
	header := []string{"initial_window", "initial_ssthresh", "beta",
		"throughput_mbps", "queue_delay_ms", "loss_rate", "power", "kind"}
	rows := [][]string{{
		strconv.Itoa(fg.Sweep.Default.Params.InitialWindow),
		strconv.Itoa(fg.Sweep.Default.Params.InitialSsthresh),
		f(fg.Sweep.Default.Params.Beta),
		f(fg.Sweep.Default.MeanThroughputMbps()),
		f(fg.Sweep.Default.MeanQueueDelayMs()),
		f(fg.Sweep.Default.MeanLossRate()),
		f(fg.Sweep.Default.MeanPower()),
		"default",
	}}
	best := fg.Sweep.Best()
	for i := range fg.Sweep.Points {
		p := &fg.Sweep.Points[i]
		kind := "sweep"
		if p == best {
			kind = "optimal"
		}
		rows = append(rows, []string{
			strconv.Itoa(p.Params.InitialWindow),
			strconv.Itoa(p.Params.InitialSsthresh),
			f(p.Params.Beta),
			f(p.MeanThroughputMbps()),
			f(p.MeanQueueDelayMs()),
			f(p.MeanLossRate()),
			f(p.MeanPower()),
			kind,
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits one row per run with the three Figure 3 series.
func (r Fig3Result) WriteCSV(w io.Writer) error {
	header := []string{"run", "default_power", "common_power", "optimal_power"}
	var rows [][]string
	for i := range r.LOO.OptimalPower {
		rows = append(rows, []string{
			strconv.Itoa(i),
			f(r.LOO.DefaultPower[i]),
			f(r.LOO.CommonPower[i]),
			f(r.LOO.OptimalPower[i]),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the three Figure 4 groups.
func (r Fig4Result) WriteCSV(w io.Writer) error {
	header := []string{"group", "throughput_mbps", "queue_delay_ms", "loss_rate", "power"}
	row := func(name string, g interface {
		MeanThroughputMbps() float64
		MeanQueueDelayMs() float64
		MeanLossRate() float64
		MeanPower() float64
	}) []string {
		return []string{name, f(g.MeanThroughputMbps()), f(g.MeanQueueDelayMs()),
			f(g.MeanLossRate()), f(g.MeanPower())}
	}
	return writeCSV(w, header, [][]string{
		row("modified", &r.Modified),
		row("unmodified", &r.Unmodified),
		row("all_default", &r.AllDefault),
	})
}

// WriteCSV emits the Table 3 rows.
func (r Table3Result) WriteCSV(w io.Writer) error {
	header := []string{"algorithm", "median_throughput_mbps", "median_queue_delay_ms", "objective"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Algorithm,
			f(row.MedianThrMbps), f(row.MedianQDelayMs), f(row.Objective)})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the Figure 5 time series: the affected aggregate around
// the event, one row per minute.
func (r Fig5Result) WriteCSV(w io.Writer) error {
	header := []string{"minute", "requests", "in_event"}
	var rows [][]string
	for i, v := range r.Series {
		minute := r.Window[0] + i
		inEvent := "0"
		if r.Best != nil && minute >= r.Best.Event.Start && minute < r.Best.Event.End {
			inEvent = "1"
		}
		rows = append(rows, []string{strconv.Itoa(minute), f(v), inEvent})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the sharing CDF points.
func (r SharingResult) WriteCSV(w io.Writer) error {
	header := []string{"others_sharing", "cdf"}
	var rows [][]string
	for _, p := range r.CDF {
		rows = append(rows, []string{f(p.X), f(p.P)})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the ablation rows.
func (r AblationResult) WriteCSV(w io.Writer) error {
	header := []string{"configuration", "throughput_mbps", "queue_delay_ms", "loss_rate", "power"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name,
			f(row.ThroughputMbps), f(row.QueueDelayMs), f(row.LossRate), f(row.Power)})
	}
	return writeCSV(w, header, rows)
}

// CSVWriter is implemented by every result that can export its series.
type CSVWriter interface {
	WriteCSV(w io.Writer) error
}

// assert the implementations.
var (
	_ CSVWriter = SweepFigure{}
	_ CSVWriter = Fig3Result{}
	_ CSVWriter = Fig4Result{}
	_ CSVWriter = Table3Result{}
	_ CSVWriter = Fig5Result{}
	_ CSVWriter = SharingResult{}
	_ CSVWriter = AblationResult{}
)
