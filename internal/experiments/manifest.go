package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// Run manifests: every phi-experiments run records what was run (the
// experiment list, seed, scale, grid), under which toolchain, how long
// it took, and each experiment's summary metrics. An archived manifest
// is a reproducibility contract: `phi-experiments -compare <manifest>`
// re-runs the same configuration and fails if any recorded metric
// drifts beyond tolerance — because every simulation is deterministic
// in its seed, a correct rebuild matches the archive exactly.

// Manifest is the serialized record of one run.
type Manifest struct {
	Experiments []string `json:"experiments"`
	Seed        int64    `json:"seed"`
	Full        bool     `json:"full"`
	Retrain     bool     `json:"retrain,omitempty"`
	// GridPoints and RunsPerPoint pin the sweep scale this configuration
	// implies (coarse: 27 x 3, full: 576 x 8).
	GridPoints   int     `json:"grid_points"`
	RunsPerPoint int     `json:"runs_per_point"`
	GoVersion    string  `json:"go_version"`
	WallSeconds  float64 `json:"wall_seconds"`
	Workers      int     `json:"workers"`

	Results []ManifestResult `json:"results"`
}

// ManifestResult is one experiment's recorded outcome.
type ManifestResult struct {
	Name        string             `json:"name"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// NewManifest assembles the manifest for a completed run.
func NewManifest(o Options, reports []RunReport, wall time.Duration) Manifest {
	m := Manifest{
		Seed:         o.Seed,
		Full:         o.Full,
		Retrain:      o.Retrain,
		GridPoints:   len(o.spec().Points()),
		RunsPerPoint: o.runs(),
		GoVersion:    runtime.Version(),
		WallSeconds:  wall.Seconds(),
		Workers:      o.Workers,
	}
	for _, r := range reports {
		m.Experiments = append(m.Experiments, r.Name)
		m.Results = append(m.Results, ManifestResult{
			Name: r.Name, WallSeconds: r.WallSeconds, Metrics: r.Metrics,
		})
	}
	return m
}

// Options reconstructs the run configuration a -compare re-run must use.
// Workers is deliberately not restored: parallelism does not affect
// results, so the fresh run uses the caller's.
func (m Manifest) Options() Options {
	return Options{Full: m.Full, Seed: m.Seed, Retrain: m.Retrain}
}

// WriteFile writes the manifest as indented JSON (metric keys sorted by
// encoding/json, so identical runs produce byte-identical files modulo
// wall times).
func (m Manifest) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads an archived manifest.
func ReadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Mismatch is one metric that differs between an archived manifest and a
// fresh run beyond tolerance. Got is NaN when the fresh run is missing
// the experiment or metric entirely.
type Mismatch struct {
	Experiment string
	Metric     string
	Want, Got  float64
}

func (m Mismatch) String() string {
	if m.Metric == "(experiment)" {
		return fmt.Sprintf("%s: experiment missing from fresh run", m.Experiment)
	}
	if math.IsNaN(m.Got) {
		return fmt.Sprintf("%s/%s: recorded %g, missing from fresh run", m.Experiment, m.Metric, m.Want)
	}
	return fmt.Sprintf("%s/%s: recorded %g, fresh run %g", m.Experiment, m.Metric, m.Want, m.Got)
}

// CompareManifests checks a fresh run against an archived manifest:
// every experiment and metric the archive records must be present and
// within relative tolerance tol (values whose magnitudes are both below
// 1e-9 compare equal). Extra experiments or metrics in the fresh run are
// ignored — archives pin what they recorded, not what later code adds.
// Mismatches are returned sorted by experiment then metric.
func CompareManifests(archived, fresh Manifest, tol float64) []Mismatch {
	var out []Mismatch
	freshByName := make(map[string]ManifestResult)
	for _, r := range fresh.Results {
		freshByName[r.Name] = r
	}
	for _, want := range archived.Results {
		got, ok := freshByName[want.Name]
		if !ok {
			out = append(out, Mismatch{Experiment: want.Name, Metric: "(experiment)", Want: math.NaN(), Got: math.NaN()})
			continue
		}
		keys := make([]string, 0, len(want.Metrics))
		for k := range want.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w := want.Metrics[k]
			g, ok := got.Metrics[k]
			if !ok {
				out = append(out, Mismatch{Experiment: want.Name, Metric: k, Want: w, Got: math.NaN()})
				continue
			}
			if !withinTolerance(w, g, tol) {
				out = append(out, Mismatch{Experiment: want.Name, Metric: k, Want: w, Got: g})
			}
		}
	}
	return out
}

// withinTolerance reports whether got matches want within relative
// tolerance tol.
func withinTolerance(want, got, tol float64) bool {
	if want == got {
		return true
	}
	if math.IsNaN(want) || math.IsNaN(got) {
		return math.IsNaN(want) && math.IsNaN(got)
	}
	scale := math.Max(math.Abs(want), math.Abs(got))
	if scale < 1e-9 {
		return true
	}
	return math.Abs(got-want) <= tol*scale
}
