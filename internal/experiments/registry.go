package experiments

import (
	"fmt"
	"strings"
)

// Experiment is one runnable artifact of the paper's evaluation: a name
// (the -run token), a one-line summary for listings, and the function
// that produces its result.
type Experiment struct {
	Name    string
	Summary string
	Run     func(Options) fmt.Stringer
}

// Index returns every runnable experiment in canonical order. The
// ablations are individually addressable so manifests record one metric
// set per runnable name; the "ablations" alias still runs all four.
func Index() []Experiment {
	return []Experiment{
		{"table1", "default TCP Cubic parameters (Table 1)",
			func(o Options) fmt.Stringer { return Table1() }},
		{"table2", "sweep grid ranges (Table 2)",
			func(o Options) fmt.Stringer { return Table2(o) }},
		{"fig2a", "low-utilization Cubic sweep (Figure 2a)",
			func(o Options) fmt.Stringer { return Fig2a(o) }},
		{"fig2b", "high-utilization Cubic sweep (Figure 2b)",
			func(o Options) fmt.Stringer { return Fig2b(o) }},
		{"fig2c", "long-running flows, beta sweep (Figure 2c)",
			func(o Options) fmt.Stringer { return Fig2c(o) }},
		{"fig3", "leave-one-out stability (Figure 3)",
			func(o Options) fmt.Stringer { return Fig3(o) }},
		{"fig4", "incremental deployment (Figure 4)",
			func(o Options) fmt.Stringer { return Fig4(o) }},
		{"deployment", "Figure 4 across adoption fractions",
			func(o Options) fmt.Stringer { return DeploymentCurve(o) }},
		{"table3", "Remy / Remy-Phi / Cubic comparison (Table 3)",
			func(o Options) fmt.Stringer { return Table3(o, o.Retrain) }},
		{"fig5", "unreachability detection and localization (Figure 5)",
			func(o Options) fmt.Stringer { return Fig5(o) }},
		{"sharing", "IPFIX flow-sharing CDF (Section 2.1)",
			func(o Options) fmt.Stringer { return Sharing(o) }},
		{"policy", "distill sweeps into a Phi policy",
			func(o Options) fmt.Stringer { return BuildPolicy(o) }},
		{"ablation-cadence", "freshness of shared congestion state",
			func(o Options) fmt.Stringer { return AblationCadence(o) }},
		{"ablation-buckets", "context-bucketing granularity",
			func(o Options) fmt.Stringer { return AblationBuckets(o) }},
		{"ablation-qdisc", "FIFO drop-tail vs RED",
			func(o Options) fmt.Stringer { return AblationQueueDiscipline(o) }},
		{"ablation-training", "seed vs trained Remy tables",
			func(o Options) fmt.Stringer { return AblationTraining(o) }},
	}
}

// aliases maps group names to the experiments they expand to.
func aliases() map[string][]string {
	return map[string][]string{
		// "all" is the paper's artifact set plus the ablations; the
		// deployment curve and policy distillation remain opt-in extras,
		// as before.
		"all": {"table1", "table2", "fig2a", "fig2b", "fig2c", "fig3", "fig4",
			"table3", "fig5", "sharing",
			"ablation-cadence", "ablation-buckets", "ablation-qdisc", "ablation-training"},
		"ablations": {"ablation-cadence", "ablation-buckets", "ablation-qdisc", "ablation-training"},
	}
}

// Names returns every valid -run token: experiment names first, then the
// group aliases.
func Names() []string {
	var out []string
	for _, e := range Index() {
		out = append(out, e.Name)
	}
	out = append(out, "all", "ablations")
	return out
}

// Resolve expands a comma-separated -run selection (experiment names and
// the "all"/"ablations" aliases, case-insensitive) into experiments,
// preserving order and dropping duplicates. An unknown token returns an
// error naming it; callers list Names() alongside.
func Resolve(list string) ([]Experiment, error) {
	byName := make(map[string]Experiment)
	for _, e := range Index() {
		byName[e.Name] = e
	}
	al := aliases()
	var out []Experiment
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, byName[name])
		}
	}
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		if tok == "" {
			continue
		}
		if expansion, ok := al[tok]; ok {
			for _, name := range expansion {
				add(name)
			}
			continue
		}
		if _, ok := byName[tok]; !ok {
			return nil, fmt.Errorf("unknown experiment %q", tok)
		}
		add(tok)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty experiment selection %q", list)
	}
	return out, nil
}
