package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/metrics"
	"repro/internal/phi"
	"repro/internal/remy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// AblationRow is one configuration of an ablation with its objective.
type AblationRow struct {
	Name           string
	Power          float64
	ThroughputMbps float64
	QueueDelayMs   float64
	LossRate       float64
}

// AblationResult is a named set of rows.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "  %-26s %10s %12s %9s %9s\n", "configuration", "thr Mbps", "qdelay ms", "loss %", "power")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-26s %10.2f %12.2f %9.3f %9.2f\n",
			row.Name, row.ThroughputMbps, row.QueueDelayMs, 100*row.LossRate, row.Power)
	}
	return b.String()
}

// Row returns the named row (nil if absent).
func (r AblationResult) Row(name string) *AblationRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// rowFromRuns averages run metrics into one row.
func rowFromRuns(name string, rs []workload.Result) AblationRow {
	var thr, qd, loss, pow []float64
	for i := range rs {
		thr = append(thr, rs[i].AggThroughputMbps())
		qd = append(qd, rs[i].MeanQueueingDelayMs())
		loss = append(loss, rs[i].LinkLossRate)
		pow = append(pow, rs[i].LossPower())
	}
	return AblationRow{Name: name,
		ThroughputMbps: metrics.Mean(thr), QueueDelayMs: metrics.Mean(qd),
		LossRate: metrics.Mean(loss), Power: metrics.Mean(pow)}
}

// AblationCadence measures how the freshness of shared state matters
// (DESIGN.md decision 2): no sharing at all, the practical context server
// fed only at connection boundaries with various estimation windows, and
// the continuous oracle. The paper's claim — the practical,
// connection-boundary design keeps most of the ideal's benefit — shows up
// as the server rows landing near the oracle row.
func AblationCadence(o Options) AblationResult {
	sc := fig2Scenario(highUtilSenders, o)
	runs := o.runs()
	out := AblationResult{Title: "Ablation: freshness of shared congestion state"}

	runDefault := o.runParallel("cadence/no-sharing", runs, func(i int) workload.Scenario {
		s := sc
		s.Seed = 800 + o.Seed + int64(i)
		s.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
		}
		return s
	})
	out.Rows = append(out.Rows, rowFromRuns("no sharing (defaults)", runDefault))

	policy := phi.DefaultPolicy()
	runServer := func(window sim.Time) []workload.Result {
		// Each run gets its own server and clock hookup, so runs are
		// independent and safe to execute concurrently.
		return o.runParallel(fmt.Sprintf("cadence/server-%v", window), runs, func(i int) workload.Scenario {
			s := sc
			s.Seed = 800 + o.Seed + int64(i)
			var eng *sim.Engine
			srv := phi.NewServer(func() sim.Time {
				if eng == nil {
					return 0
				}
				return eng.Now()
			}, phi.ServerConfig{Window: window})
			srv.RegisterPath("bn", s.Dumbbell.BottleneckRate)
			client := &phi.Client{Source: srv, Reporter: srv, Policy: policy, Path: "bn"}
			s.OnTopology = func(e *sim.Engine, d *sim.Dumbbell) { eng = e }
			s.CC = func(int) func() tcp.CongestionControl { return client.CC() }
			s.OnStart = func(_ int, flow sim.FlowID) { client.OnStart(flow) }
			s.OnEnd = func(_ int, st *tcp.FlowStats) { client.OnEnd(st) }
			return s
		})
	}
	for _, w := range []sim.Time{2 * sim.Second, 10 * sim.Second, 30 * sim.Second} {
		out.Rows = append(out.Rows, rowFromRuns(
			fmt.Sprintf("context server (%v window)", w), runServer(w)))
	}

	runOracle := o.runParallel("cadence/oracle", runs, func(i int) workload.Scenario {
		s := sc
		s.Seed = 800 + o.Seed + int64(i)
		var probe *sim.RateProbe
		s.OnTopology = func(e *sim.Engine, d *sim.Dumbbell) {
			probe = sim.NewRateProbe(e, d.Bottleneck.Monitor(), 100*sim.Millisecond, sim.Second)
		}
		s.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				return tcp.NewCubic(policy.Params(phi.Context{U: probe.Utilization()}))
			}
		}
		return s
	})
	out.Rows = append(out.Rows, rowFromRuns("oracle (continuous)", runOracle))
	return out
}

// AblationBuckets measures context-bucketing granularity (DESIGN.md
// decision 3): a policy with a single rule cannot fit both an idle and a
// busy network; finer utilization bands adapt better. Each policy is
// evaluated with oracle lookups across three load levels and the rows
// report the mean across levels.
func AblationBuckets(o Options) AblationResult {
	full := phi.DefaultPolicy() // 4 bands
	two := &phi.Policy{
		Rules: []phi.Rule{
			full.Rules[0],
			{MaxU: math.Inf(1), Params: full.Rules[3].Params},
		},
		Default: full.Default,
	}
	one := &phi.Policy{
		Rules:   []phi.Rule{{MaxU: math.Inf(1), Params: full.Rules[1].Params}},
		Default: full.Default,
	}

	loads := []int{lowUtilSenders, highUtilSenders, 6}
	runs := o.runs()
	evalPolicy := func(name string, pol *phi.Policy) []workload.Result {
		// The loads x runs double loop, flattened so every run can go to
		// its own worker; index order matches the serial nesting.
		return o.runParallel("buckets/"+name, len(loads)*runs, func(j int) workload.Scenario {
			senders, i := loads[j/runs], j%runs
			s := fig2Scenario(senders, o)
			s.Seed = 900 + o.Seed + int64(i)
			var probe *sim.RateProbe
			s.OnTopology = func(e *sim.Engine, d *sim.Dumbbell) {
				probe = sim.NewRateProbe(e, d.Bottleneck.Monitor(), 100*sim.Millisecond, sim.Second)
			}
			s.CC = func(int) func() tcp.CongestionControl {
				return func() tcp.CongestionControl {
					return tcp.NewCubic(pol.Params(phi.Context{U: probe.Utilization()}))
				}
			}
			return s
		})
	}

	out := AblationResult{Title: "Ablation: context-bucketing granularity (mean over 3 load levels)"}
	out.Rows = append(out.Rows, rowFromRuns("1 band (one size fits all)", evalPolicy("1-band", one)))
	out.Rows = append(out.Rows, rowFromRuns("2 bands", evalPolicy("2-band", two)))
	out.Rows = append(out.Rows, rowFromRuns("4 bands (default policy)", evalPolicy("4-band", full)))
	return out
}

// AblationQueueDiscipline contrasts FIFO drop-tail with RED for the
// incremental-deployment story (DESIGN.md decision 4). Under FIFO the
// unmodified majority's overshoot inflates everyone's delay (the paper's
// incentive-compatibility point); RED polices the queue early, shrinking
// the gap between deployment worlds.
func AblationQueueDiscipline(o Options) AblationResult {
	runs := o.runs()
	out := AblationResult{Title: "Ablation: FIFO drop-tail vs RED under all-default senders"}
	for _, disc := range []string{"fifo", "red"} {
		disc := disc
		rs := o.runParallel("qdisc/"+disc, runs, func(i int) workload.Scenario {
			s := fig2Scenario(highUtilSenders, o)
			s.Seed = 950 + o.Seed + int64(i)
			if disc == "red" {
				bufBytes := int(5 * float64(s.Dumbbell.BottleneckRate) / 8 * s.Dumbbell.RTT.Seconds())
				s.Dumbbell.Discipline = sim.NewRED(bufBytes, rand.New(rand.NewSource(s.Seed)))
			}
			s.CC = func(int) func() tcp.CongestionControl {
				return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
			}
			return s
		})
		out.Rows = append(out.Rows, rowFromRuns(disc, rs))
	}
	return out
}

// AblationTraining contrasts the shipped seed Remy tables with tables
// improved by the in-simulator trainer (DESIGN.md decision 5): the seed
// tables are hand-derived and good enough for shape reproduction; the
// trainer should only move the objective up.
func AblationTraining(o Options) AblationResult {
	sc := table3Scenario(o)
	evalSc := sc
	evalSc.Duration = sc.Duration / 2
	iters := 3
	if o.Full {
		iters = 10
	}

	out := AblationResult{Title: "Ablation: seed vs trained Remy tables (Table 3 workload, ideal util)"}
	evalCfg := remy.EvalConfig{Scenario: sc, Mode: remy.UtilIdeal, Runs: o.runs(), BaseSeed: 970 + o.Seed}

	rowFor := func(name string, table *remy.Table) AblationRow {
		ev := remy.Evaluate(table, evalCfg)
		return rowFromRuns(name, ev.Runs)
	}
	seedTable := remy.DefaultPhiTable()
	out.Rows = append(out.Rows, rowFor("seed table", seedTable))

	trained, _ := remy.Train(seedTable, remy.TrainConfig{
		Eval:       remy.EvalConfig{Scenario: evalSc, Mode: remy.UtilIdeal, Runs: 1, BaseSeed: 970 + o.Seed},
		Iterations: iters,
		AllowSplit: true,
	})
	out.Rows = append(out.Rows, rowFor(fmt.Sprintf("trained (%d iters, %d cells)", iters, trained.Cells()), trained))
	return out
}
