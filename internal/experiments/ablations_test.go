package experiments

import (
	"strings"
	"testing"
)

func TestAblationCadenceSharingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := AblationCadence(Options{})
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(r.Rows))
	}
	none := r.Row("no sharing (defaults)")
	oracle := r.Row("oracle (continuous)")
	srv10 := r.Row("context server (10s window)")
	if none == nil || oracle == nil || srv10 == nil {
		t.Fatal("missing rows")
	}
	// Any sharing beats none.
	for _, row := range r.Rows[1:] {
		if row.Power <= none.Power {
			t.Errorf("%s power %.2f not above no-sharing %.2f", row.Name, row.Power, none.Power)
		}
	}
	// The practical server keeps most of the oracle's benefit
	// (Section 2.2.2's claim; Table 3's practical-vs-ideal analogue).
	gainOracle := oracle.Power - none.Power
	gainServer := srv10.Power - none.Power
	if gainServer < 0.5*gainOracle {
		t.Errorf("practical server captured only %.0f%% of the oracle gain",
			100*gainServer/gainOracle)
	}
	if !strings.Contains(r.String(), "oracle") {
		t.Error("output incomplete")
	}
}

func TestAblationBucketsFinerHelpsLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := AblationBuckets(Options{})
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	one := r.Row("1 band (one size fits all)")
	four := r.Row("4 bands (default policy)")
	if one == nil || four == nil {
		t.Fatal("missing rows")
	}
	// The single mid-band setting is over-aggressive at high load: the
	// banded policy must hold the loss rate well below it while keeping
	// throughput in the same ballpark.
	if four.LossRate >= one.LossRate {
		t.Errorf("banded policy loss %.4f not below one-size %.4f", four.LossRate, one.LossRate)
	}
	if four.ThroughputMbps < 0.7*one.ThroughputMbps {
		t.Errorf("banded policy throughput %.2f collapsed vs %.2f", four.ThroughputMbps, one.ThroughputMbps)
	}
}

func TestAblationQueueDisciplineContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := AblationQueueDiscipline(Options{})
	fifo := r.Row("fifo")
	red := r.Row("red")
	if fifo == nil || red == nil {
		t.Fatal("missing rows")
	}
	// RED polices early: the standing queue must be smaller than under
	// drop-tail with the same (overshooting) default senders.
	if red.QueueDelayMs >= fifo.QueueDelayMs {
		t.Errorf("RED qdelay %.1f not below FIFO %.1f", red.QueueDelayMs, fifo.QueueDelayMs)
	}
	if r.String() == "" {
		t.Error("empty output")
	}
}

func TestAblationTrainingDoesNotRegress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := AblationTraining(Options{})
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	seed := r.Rows[0]
	trained := r.Rows[1]
	// The trainer optimizes on a shorter horizon than the evaluation, so
	// allow noise, but it must not collapse.
	if trained.Power < 0.8*seed.Power {
		t.Errorf("training regressed: %.2f -> %.2f", seed.Power, trained.Power)
	}
	if r.String() == "" {
		t.Error("empty output")
	}
}

func TestDeploymentCurveMonotoneBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := DeploymentCurve(Options{})
	if len(r.Points) != 4 {
		t.Fatalf("%d points", len(r.Points))
	}
	// At every adoption level the modified group must outperform the
	// default-parameter world's power (Figure 4's claim holds across the
	// curve), and full adoption should do at least as well as the lowest
	// partial level.
	for _, p := range r.Points {
		if p.Modified.MeanPower() <= 0 {
			t.Errorf("adoption %.0f%%: modified power %.2f", 100*p.Fraction, p.Modified.MeanPower())
		}
	}
	first := r.Points[0].Modified.MeanPower()
	last := r.Points[len(r.Points)-1].Modified.MeanPower()
	if last < 0.7*first {
		t.Errorf("full-adoption power %.2f collapsed vs single-adopter %.2f", last, first)
	}
	if r.String() == "" {
		t.Error("empty output")
	}
}
