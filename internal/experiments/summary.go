package experiments

import (
	"fmt"
	"strings"

	"repro/internal/diagnosis"
	"repro/internal/metrics"
)

// Summary metrics: every result type reduces itself to a flat map of
// named scalars. These are what run manifests record and what
// `phi-experiments -compare` checks a fresh run against — the headline
// numbers of each figure/table, not the full series (those go to -csv).

// MetricsReporter is implemented by result types that expose scalar
// summary metrics for run manifests and regression comparison.
type MetricsReporter interface {
	SummaryMetrics() map[string]float64
}

// metricKey normalizes a row/series name into a manifest metric key:
// lowercase, runs of non-alphanumerics collapsed to single underscores.
func metricKey(parts ...string) string {
	var b strings.Builder
	wrote := false
	pend := false
	for _, part := range parts {
		for _, r := range strings.ToLower(part) {
			alnum := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
			if !alnum {
				pend = wrote
				continue
			}
			if pend {
				b.WriteByte('_')
				pend = false
			}
			b.WriteRune(r)
			wrote = true
		}
		pend = wrote
	}
	return b.String()
}

// SummaryMetrics reports the default parameter values.
func (r Table1Result) SummaryMetrics() map[string]float64 {
	return map[string]float64{
		"initial_ssthresh": float64(r.Defaults.InitialSsthresh),
		"initial_window":   float64(r.Defaults.InitialWindow),
		"beta":             r.Defaults.Beta,
	}
}

// SummaryMetrics reports the grid size.
func (r Table2Result) SummaryMetrics() map[string]float64 {
	return map[string]float64{"grid_points": float64(r.Points)}
}

// SummaryMetrics reports the sweep's headline contrast: default vs
// optimal objective, the improvement factors, and the loss rates behind
// the paper's 3.92%-vs-0.01% claim.
func (f SweepFigure) SummaryMetrics() map[string]float64 {
	gain, delayRed, lossDef, lossOpt := f.Improvement()
	return map[string]float64{
		"utilization":     f.Utilization,
		"default_power":   f.Sweep.Default.MeanPower(),
		"optimal_power":   f.Sweep.Best().MeanPower(),
		"throughput_gain": gain,
		"delay_reduction": delayRed,
		"loss_default":    lossDef,
		"loss_optimal":    lossOpt,
	}
}

// SummaryMetrics reports the mean of each Figure 3 series and the
// common-setting gain (the figure's takeaway).
func (r Fig3Result) SummaryMetrics() map[string]float64 {
	return map[string]float64{
		"default_power_mean": metrics.Mean(r.LOO.DefaultPower),
		"common_power_mean":  metrics.Mean(r.LOO.CommonPower),
		"optimal_power_mean": metrics.Mean(r.LOO.OptimalPower),
		"common_gain":        r.CommonGainOverDefault(),
	}
}

// SummaryMetrics reports each Figure 4 group's objective and delay.
func (r Fig4Result) SummaryMetrics() map[string]float64 {
	return map[string]float64{
		"modified_power":        r.Modified.MeanPower(),
		"unmodified_power":      r.Unmodified.MeanPower(),
		"all_default_power":     r.AllDefault.MeanPower(),
		"modified_qdelay_ms":    r.Modified.MeanQueueDelayMs(),
		"unmodified_qdelay_ms":  r.Unmodified.MeanQueueDelayMs(),
		"all_default_qdelay_ms": r.AllDefault.MeanQueueDelayMs(),
	}
}

// SummaryMetrics reports the modified group's objective per adoption level.
func (r DeploymentCurveResult) SummaryMetrics() map[string]float64 {
	out := make(map[string]float64)
	for _, p := range r.Points {
		key := fmt.Sprintf("modified_power_%dpct", int(p.Fraction*100+0.5))
		out[key] = p.Modified.MeanPower()
	}
	return out
}

// SummaryMetrics reports each algorithm's three Table 3 columns.
func (r Table3Result) SummaryMetrics() map[string]float64 {
	out := make(map[string]float64)
	for _, row := range r.Rows {
		out[metricKey(row.Algorithm, "median_thr_mbps")] = row.MedianThrMbps
		out[metricKey(row.Algorithm, "median_qdelay_ms")] = row.MedianQDelayMs
		out[metricKey(row.Algorithm, "objective")] = row.Objective
	}
	return out
}

// SummaryMetrics reports whether the injected outage was detected and how
// well it was localized.
func (r Fig5Result) SummaryMetrics() map[string]float64 {
	out := map[string]float64{
		"detected": 0,
		"findings": float64(len(r.Findings)),
	}
	if r.Best != nil {
		out["detected"] = 1
		out["coverage_service"] = r.Localization.Coverage[diagnosis.DimService]
		out["coverage_isp"] = r.Localization.Coverage[diagnosis.DimISP]
		out["coverage_metro"] = r.Localization.Coverage[diagnosis.DimMetro]
	}
	return out
}

// SummaryMetrics reports the Section 2.1 sharing fractions.
func (r SharingResult) SummaryMetrics() map[string]float64 {
	return map[string]float64{
		"exported_flows":     float64(r.ExportedFlows),
		"slices":             float64(r.Slices),
		"share_at_least_5":   r.AtLeast5,
		"share_at_least_100": r.AtLeast100,
	}
}

// SummaryMetrics reports each ablation configuration's objective.
func (r AblationResult) SummaryMetrics() map[string]float64 {
	out := make(map[string]float64)
	for _, row := range r.Rows {
		out[metricKey(row.Name, "power")] = row.Power
	}
	return out
}

// SummaryMetrics reports the distilled policy's shape.
func (r PolicyResult) SummaryMetrics() map[string]float64 {
	return map[string]float64{
		"rules": float64(len(r.Policy.Rules)),
		"bands": float64(len(r.Bands)),
	}
}

// assert the implementations.
var (
	_ MetricsReporter = Table1Result{}
	_ MetricsReporter = Table2Result{}
	_ MetricsReporter = SweepFigure{}
	_ MetricsReporter = Fig3Result{}
	_ MetricsReporter = Fig4Result{}
	_ MetricsReporter = DeploymentCurveResult{}
	_ MetricsReporter = Table3Result{}
	_ MetricsReporter = Fig5Result{}
	_ MetricsReporter = SharingResult{}
	_ MetricsReporter = AblationResult{}
	_ MetricsReporter = PolicyResult{}
)
