package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/remy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// Table3Row is one algorithm's medians, matching the paper's columns.
type Table3Row struct {
	Algorithm      string
	MedianThrMbps  float64
	MedianQDelayMs float64
	// Objective is Remy's log-power objective ln(throughput/delay).
	Objective float64
}

// Table3Result holds the four rows of Table 3.
type Table3Result struct {
	Rows []Table3Row
	// TrainTrace is non-empty when the tables were retrained (objective
	// after each training iteration).
	TrainTrace []float64
}

// table3Scenario is the paper's Table 3 workload: single-bottleneck
// dumbbell, 15 Mbit/s, 150 ms RTT, 8 senders alternating exp(100 KB)
// transfers with exp(0.5 s) idle periods.
func table3Scenario(o Options) workload.Scenario {
	return workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(8),
		MeanOnBytes: 100_000,
		MeanOffTime: 500 * sim.Millisecond,
		Duration:    o.duration(),
		Warmup:      5 * sim.Second,
	}
}

// Table3 regenerates Table 3. With retrain true, the Remy tables are
// first improved by the in-simulator trainer (slow); otherwise the seed
// tables ship with the repository are used.
func Table3(o Options, retrain bool) Table3Result {
	sc := table3Scenario(o)
	runs := o.runs()
	seed := 600 + o.Seed

	baseTable := remy.DefaultTable()
	phiTable := remy.DefaultPhiTable()
	var trace []float64
	if retrain {
		iters := 4
		if o.Full {
			iters = 12
		}
		evalSc := sc
		evalSc.Duration = sc.Duration / 2
		baseTable, _ = remy.Train(baseTable, remy.TrainConfig{
			Eval:       remy.EvalConfig{Scenario: evalSc, Mode: remy.UtilOff, Runs: 1, BaseSeed: seed},
			Iterations: iters,
		})
		phiTable, trace = remy.Train(phiTable, remy.TrainConfig{
			Eval:       remy.EvalConfig{Scenario: evalSc, Mode: remy.UtilIdeal, Runs: 1, BaseSeed: seed},
			Iterations: iters,
		})
	}

	var res Table3Result
	res.TrainTrace = trace

	// Remy variants.
	add := func(name string, rs []workload.Result) {
		var thr, qd, obj []float64
		for i := range rs {
			thr = append(thr, rs[i].ThroughputsMbps()...)
			qd = append(qd, rs[i].QueueingDelaysMs()...)
			obj = append(obj, rs[i].LogPower())
		}
		res.Rows = append(res.Rows, Table3Row{
			Algorithm:      name,
			MedianThrMbps:  metrics.Median(thr),
			MedianQDelayMs: metrics.Median(qd),
			Objective:      metrics.Mean(obj),
		})
	}

	add("Remy-Phi-practical", remy.Evaluate(phiTable,
		remy.EvalConfig{Scenario: sc, Mode: remy.UtilPractical, Runs: runs, BaseSeed: seed}).Runs)
	add("Remy-Phi-ideal", remy.Evaluate(phiTable,
		remy.EvalConfig{Scenario: sc, Mode: remy.UtilIdeal, Runs: runs, BaseSeed: seed}).Runs)
	add("Remy", remy.Evaluate(baseTable,
		remy.EvalConfig{Scenario: sc, Mode: remy.UtilOff, Runs: runs, BaseSeed: seed}).Runs)

	// Cubic baseline.
	cubicRuns := o.runParallel("table3/cubic", runs, func(i int) workload.Scenario {
		s := sc
		s.Seed = seed + int64(i)
		s.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
		}
		return s
	})
	add("Cubic", cubicRuns)
	return res
}

func (r Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: single-bottleneck dumbbell, 15 Mbps, 150 ms RTT, 8 senders,\n")
	b.WriteString("exp(100 KB) on / exp(0.5 s) off\n")
	fmt.Fprintf(&b, "  %-20s %16s %18s %16s\n", "Algorithm", "median thr Mbps", "median qdelay ms", "objective ln(P)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-20s %16.2f %18.2f %16.2f\n",
			row.Algorithm, row.MedianThrMbps, row.MedianQDelayMs, row.Objective)
	}
	if len(r.TrainTrace) > 0 {
		fmt.Fprintf(&b, "  (retrained; objective trace %v)\n", r.TrainTrace)
	}
	return b.String()
}

// Row returns the named row (nil if absent).
func (r Table3Result) Row(name string) *Table3Row {
	for i := range r.Rows {
		if r.Rows[i].Algorithm == name {
			return &r.Rows[i]
		}
	}
	return nil
}
