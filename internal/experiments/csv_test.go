package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/diagnosis"
	"repro/internal/metrics"
	"repro/internal/phi"
	"repro/internal/tcp"
)

// fakeSweep builds a tiny SweepResult without running simulations.
func fakeSweep() *phi.SweepResult {
	mk := func(p tcp.CubicParams, power float64) phi.SweepPoint {
		return phi.SweepPoint{Params: p, Runs: []phi.RunMetrics{{
			ThroughputMbps: power / 2, QueueDelayMs: 10, LossRate: 0.01, Power: power,
		}}}
	}
	return &phi.SweepResult{
		Default: mk(tcp.DefaultCubicParams(), 3),
		Points: []phi.SweepPoint{
			mk(tcp.CubicParams{InitialWindow: 16, InitialSsthresh: 64, Beta: 0.2}, 9),
			mk(tcp.CubicParams{InitialWindow: 2, InitialSsthresh: 16, Beta: 0.5}, 6),
		},
	}
}

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestSweepFigureCSV(t *testing.T) {
	fig := SweepFigure{Name: "test", Sweep: fakeSweep()}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 4 { // header + default + 2 points
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1][7] != "default" {
		t.Errorf("first data row kind = %q", rows[1][7])
	}
	foundOptimal := false
	for _, r := range rows[2:] {
		if r[7] == "optimal" {
			foundOptimal = true
		}
	}
	if !foundOptimal {
		t.Error("no optimal row marked")
	}
}

func TestFig3And4CSV(t *testing.T) {
	f3 := Fig3Result{LOO: phi.LeaveOneOut{
		CommonPower: []float64{8, 8.5}, OptimalPower: []float64{9, 10}, DefaultPower: []float64{4, 4.2},
	}}
	var buf bytes.Buffer
	if err := f3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 3 {
		t.Errorf("fig3 rows = %d", len(rows))
	}

	f4 := Fig4Result{
		Modified:   phi.GroupMetrics{Runs: []phi.RunMetrics{{Power: 9}}},
		Unmodified: phi.GroupMetrics{Runs: []phi.RunMetrics{{Power: 4}}},
		AllDefault: phi.GroupMetrics{Runs: []phi.RunMetrics{{Power: 3.5}}},
	}
	buf.Reset()
	if err := f4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"modified", "unmodified", "all_default"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 csv missing %q", want)
		}
	}
}

func TestTable3AndSharingCSV(t *testing.T) {
	t3 := Table3Result{Rows: []Table3Row{
		{Algorithm: "Remy", MedianThrMbps: 1.4, MedianQDelayMs: 2, Objective: 2.2},
	}}
	var buf bytes.Buffer
	if err := t3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Remy") {
		t.Error("table3 csv missing row")
	}

	sh := SharingResult{CDF: []metrics.Point{{X: 5, P: 0.5}, {X: 100, P: 0.88}}}
	buf.Reset()
	if err := sh.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 3 {
		t.Errorf("sharing rows = %d", len(rows))
	}
}

func TestFig5AndAblationCSV(t *testing.T) {
	f5 := Fig5Result{
		Best:   &diagnosis.Finding{Event: diagnosis.Event{Start: 12, End: 14}},
		Series: []float64{100, 10, 10, 100},
		Window: [2]int{10, 14},
	}
	var buf bytes.Buffer
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 5 {
		t.Fatalf("fig5 rows = %d", len(rows))
	}
	if rows[3][2] != "1" { // minute 12 is inside the event
		t.Errorf("in_event flag wrong: %v", rows[3])
	}

	ab := AblationResult{Title: "t", Rows: []AblationRow{{Name: "fifo", Power: 5}}}
	buf.Reset()
	if err := ab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fifo") {
		t.Error("ablation csv missing row")
	}
}
