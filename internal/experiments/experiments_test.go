package experiments

import (
	"strings"
	"testing"

	"repro/internal/diagnosis"
)

// These tests assert the qualitative shapes of the paper's results — who
// wins, by roughly what factor, where the effects appear — using the
// coarse experiment options.

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1()
	if r.Defaults.InitialWindow != 2 || r.Defaults.InitialSsthresh != 65536 || r.Defaults.Beta != 0.2 {
		t.Errorf("defaults = %v", r.Defaults)
	}
	s := r.String()
	for _, want := range []string{"65536", "initial_ssthresh", "windowInit_", "beta"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2GridSizes(t *testing.T) {
	if got := Table2(Options{Full: true}).Points; got != 576 {
		t.Errorf("full grid = %d, want 576 (8x8x9)", got)
	}
	coarse := Table2(Options{})
	if coarse.Points == 0 || coarse.Points >= 576 {
		t.Errorf("coarse grid = %d", coarse.Points)
	}
	if coarse.String() == "" {
		t.Error("empty output")
	}
}

func TestFig2aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := Fig2a(Options{})
	if f.Utilization < 0.1 || f.Utilization > 0.45 {
		t.Errorf("low-util scenario at %.0f%% utilization", 100*f.Utilization)
	}
	gain, delayRed, lossDef, lossOpt := f.Improvement()
	if gain <= 1.0 {
		t.Errorf("optimal throughput gain x%.2f, want > 1", gain)
	}
	if delayRed <= 0.3 {
		t.Errorf("optimal delay reduction %.0f%%, want well above 0", 100*delayRed)
	}
	if lossOpt >= lossDef {
		t.Errorf("optimal loss %.3f should be below default %.3f", lossOpt, lossDef)
	}
	best := f.Sweep.Best().Params
	def := f.Sweep.Default.Params
	if best.InitialWindow <= def.InitialWindow {
		t.Errorf("optimal initial window %d should exceed default %d (paper finding)",
			best.InitialWindow, def.InitialWindow)
	}
	if best.InitialSsthresh >= def.InitialSsthresh {
		t.Errorf("optimal ssthresh %d should be below default %d (paper finding)",
			best.InitialSsthresh, def.InitialSsthresh)
	}
	if !strings.Contains(f.String(), "OPTIMAL") {
		t.Error("figure output missing OPTIMAL marker")
	}
}

func TestFig2bLossContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := Fig2b(Options{})
	if f.Utilization < 0.45 {
		t.Errorf("high-util scenario at only %.0f%%", 100*f.Utilization)
	}
	_, _, lossDef, lossOpt := f.Improvement()
	// The paper's headline: 3.92% default vs 0.01% optimal.
	if lossDef < 0.01 {
		t.Errorf("default loss %.4f, want the multi-percent regime", lossDef)
	}
	if lossOpt > lossDef/5 {
		t.Errorf("optimal loss %.4f not dramatically below default %.4f", lossOpt, lossDef)
	}
	if f.Sweep.Best().MeanPower() <= f.Sweep.Default.MeanPower() {
		t.Error("optimal power should beat default")
	}
}

func TestFig2aOptimalMoreAggressiveThanFig2b(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// "The optimal settings shift to be smaller as the link utilization
	// becomes higher."
	low := Fig2a(Options{}).Sweep.Best().Params
	high := Fig2b(Options{}).Sweep.Best().Params
	if low.InitialWindow < high.InitialWindow {
		t.Errorf("low-util optimal iw %d should be >= high-util %d",
			low.InitialWindow, high.InitialWindow)
	}
}

func TestFig2cOnlyBetaMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := Fig2c(Options{})
	if f.Utilization < 0.95 {
		t.Errorf("long-running utilization %.2f, want ~0.99", f.Utilization)
	}
	// A larger beta should yield a clearly lower queueing delay than the
	// default 0.2 (the paper's finding for long-running flows).
	var qdLow, qdHigh float64
	for i := range f.Sweep.Points {
		p := &f.Sweep.Points[i]
		switch p.Params.Beta {
		case 0.2:
			qdLow = p.MeanQueueDelayMs()
		case 0.8:
			qdHigh = p.MeanQueueDelayMs()
		}
	}
	if qdHigh >= qdLow {
		t.Errorf("beta=0.8 qdelay %.1f ms should be below beta=0.2 %.1f ms", qdHigh, qdLow)
	}
}

func TestFig3CommonNearOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig3(Options{})
	if len(r.LOO.CommonPower) < 4 {
		t.Fatalf("LOO over %d runs", len(r.LOO.CommonPower))
	}
	gain := r.CommonGainOverDefault()
	if gain <= 1.2 {
		t.Errorf("common-setting gain over default x%.2f, want clearly > 1 (not a fluke)", gain)
	}
	// Common captures most of the optimal's gain.
	var def, common, opt float64
	for i := range r.LOO.CommonPower {
		def += r.LOO.DefaultPower[i]
		common += r.LOO.CommonPower[i]
		opt += r.LOO.OptimalPower[i]
	}
	if capture := (common - def) / (opt - def); capture < 0.5 {
		t.Errorf("common setting captured only %.0f%% of the optimal gain", 100*capture)
	}
	if r.String() == "" {
		t.Error("empty output")
	}
}

func TestFig4IncrementalDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig4(Options{})
	// Modified senders beat the unmodified senders in the same run.
	if r.Modified.MeanPower() <= r.Unmodified.MeanPower() {
		t.Errorf("modified power %.2f should beat unmodified %.2f",
			r.Modified.MeanPower(), r.Unmodified.MeanPower())
	}
	if r.Modified.MeanQueueDelayMs() >= r.Unmodified.MeanQueueDelayMs() {
		t.Errorf("modified qdelay %.1f should be below unmodified %.1f",
			r.Modified.MeanQueueDelayMs(), r.Unmodified.MeanQueueDelayMs())
	}
	// "Even the unmodified senders see an improvement in the power
	// metric" vs the all-default world.
	if r.Unmodified.MeanPower() <= r.AllDefault.MeanPower() {
		t.Errorf("unmodified power %.2f should beat all-default %.2f",
			r.Unmodified.MeanPower(), r.AllDefault.MeanPower())
	}
	if r.String() == "" {
		t.Error("empty output")
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Table3(Options{}, false)
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	cubic := r.Row("Cubic")
	remy := r.Row("Remy")
	prac := r.Row("Remy-Phi-practical")
	ideal := r.Row("Remy-Phi-ideal")
	if cubic == nil || remy == nil || prac == nil || ideal == nil {
		t.Fatal("missing rows")
	}
	// Objective ordering: ideal >= practical > remy > cubic.
	if !(remy.Objective > cubic.Objective) {
		t.Errorf("Remy %.2f should beat Cubic %.2f", remy.Objective, cubic.Objective)
	}
	if !(prac.Objective > remy.Objective) {
		t.Errorf("practical %.2f should beat Remy %.2f", prac.Objective, remy.Objective)
	}
	if ideal.Objective < prac.Objective-0.1 {
		t.Errorf("ideal %.2f should be at least practical %.2f", ideal.Objective, prac.Objective)
	}
	// Throughput: the Phi variants clearly above plain Remy (paper:
	// 1.93-1.97 vs 1.45).
	if prac.MedianThrMbps < 1.2*remy.MedianThrMbps {
		t.Errorf("practical throughput %.2f not clearly above Remy %.2f",
			prac.MedianThrMbps, remy.MedianThrMbps)
	}
	if !strings.Contains(r.String(), "Remy-Phi-practical") {
		t.Error("output missing rows")
	}
}

func TestFig5DetectsAndLocalizes(t *testing.T) {
	r := Fig5(Options{})
	if r.Best == nil {
		t.Fatal("event not detected")
	}
	if r.Best.Scope[diagnosis.DimISP] != r.Injected.ISP ||
		r.Best.Scope[diagnosis.DimMetro] != r.Injected.Metro {
		t.Errorf("detected scope %v, want injected %s/%s",
			r.Best.Scope, r.Injected.ISP, r.Injected.Metro)
	}
	if d := r.Best.Event.Duration(); d < 100 || d > 140 {
		t.Errorf("duration %d minutes, want ~120 ('around 2 hours')", d)
	}
	if r.Localization.Pinned[diagnosis.DimISP] != r.Injected.ISP {
		t.Errorf("localization %v", r.Localization)
	}
	if len(r.Series) == 0 {
		t.Error("no figure series extracted")
	}
	if !strings.Contains(r.String(), "localized") {
		t.Error("output incomplete")
	}
}

func TestSharingMatchesAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Sharing(Options{})
	if r.AtLeast5 < 0.4 || r.AtLeast5 > 0.62 {
		t.Errorf("P(>=5) = %.2f, want near the paper's 0.50", r.AtLeast5)
	}
	if r.AtLeast100 < 0.06 || r.AtLeast100 > 0.2 {
		t.Errorf("P(>=100) = %.2f, want near the paper's 0.12", r.AtLeast100)
	}
	if r.ExportedFlows == 0 || r.Slices == 0 || len(r.CDF) == 0 {
		t.Error("empty analysis")
	}
	// CDF must be monotone.
	for i := 1; i < len(r.CDF); i++ {
		if r.CDF[i].P < r.CDF[i-1].P || r.CDF[i].X < r.CDF[i-1].X {
			t.Fatalf("CDF not monotone: %+v", r.CDF)
		}
	}
}

func TestBuildPolicyIsOrderedAndValid(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := BuildPolicy(Options{})
	if len(r.Policy.Rules) != 3 {
		t.Fatalf("%d rules, want 3", len(r.Policy.Rules))
	}
	for i, rule := range r.Policy.Rules {
		if !rule.Params.Valid() {
			t.Errorf("rule %d has invalid params", i)
		}
		if i > 0 && rule.MaxU <= r.Policy.Rules[i-1].MaxU {
			t.Error("rules not ordered by utilization")
		}
	}
	// The low-utilization band should start with at least as large an
	// initial window as the saturated band (the paper's monotonicity).
	lo := r.Policy.Rules[0].Params
	hi := r.Policy.Rules[len(r.Policy.Rules)-1].Params
	if lo.InitialWindow < hi.InitialWindow {
		t.Errorf("low-band iw %d below saturated-band iw %d", lo.InitialWindow, hi.InitialWindow)
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 1)
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline length %d, want 8", len([]rune(s)))
	}
	if s[0] == s[len(s)-1] {
		t.Error("sparkline flat for a rising series")
	}
	if flat := sparkline([]float64{5, 5, 5}, 1); len([]rune(flat)) != 3 {
		t.Error("flat sparkline wrong length")
	}
}
