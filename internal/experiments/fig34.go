package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/phi"
)

// Fig3Result is the Figure 3 stability analysis: per run, the objective of
// the default setting, of the per-run optimal setting, and of the
// "common" setting (optimal on one run, applied to the others).
type Fig3Result struct {
	LOO phi.LeaveOneOut
}

// Fig3 regenerates Figure 3 from the high-utilization sweep.
func Fig3(o Options) Fig3Result {
	sc := fig2Scenario(highUtilSenders, o)
	runs := o.runs()
	if runs < 4 {
		runs = 4 // leave-one-out needs enough runs to be meaningful
	}
	res := o.sweep(phi.SweepConfig{Scenario: sc, Spec: o.spec(), Runs: runs, BaseSeed: 400 + o.Seed})
	return Fig3Result{LOO: res.LeaveOneOut()}
}

func (r Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: stability of optimal parameter settings (leave-one-out)\n")
	fmt.Fprintf(&b, "  %-6s %12s %12s %12s\n", "run", "default P_l", "common P_l", "optimal P_l")
	for i := range r.LOO.OptimalPower {
		fmt.Fprintf(&b, "  %-6d %12.2f %12.2f %12.2f\n",
			i, r.LOO.DefaultPower[i], r.LOO.CommonPower[i], r.LOO.OptimalPower[i])
	}
	fmt.Fprintf(&b, "  %-6s %12.2f %12.2f %12.2f\n", "mean",
		metrics.Mean(r.LOO.DefaultPower), metrics.Mean(r.LOO.CommonPower), metrics.Mean(r.LOO.OptimalPower))
	return b.String()
}

// CommonGainOverDefault reports the mean common-setting improvement over
// the default setting (the Figure 3 takeaway: nearly all the optimal
// setting's gain transfers across runs).
func (r Fig3Result) CommonGainOverDefault() float64 {
	d := metrics.Mean(r.LOO.DefaultPower)
	if d == 0 {
		return 0
	}
	return metrics.Mean(r.LOO.CommonPower) / d
}

// Fig4Result is the incremental-deployment experiment: metrics for the
// modified (Phi-optimal parameters) and unmodified (default) halves, plus
// the all-default reference.
type Fig4Result struct {
	Modified   phi.GroupMetrics
	Unmodified phi.GroupMetrics
	// AllDefault is the same workload with every sender on defaults, the
	// baseline both groups are compared against.
	AllDefault phi.GroupMetrics
	// OptimalParams is the setting the modified half adopted.
	OptimalParams string
}

// Fig4 regenerates Figure 4: at ~60% utilization, half the senders adopt
// the setting that would have been optimal under full cooperation.
func Fig4(o Options) Fig4Result {
	sc := fig2Scenario(highUtilSenders, o)

	// Find the cooperative optimum first (as the paper does).
	sweep := o.sweep(phi.SweepConfig{Scenario: sc, Spec: o.spec(), Runs: o.runs(), BaseSeed: 500 + o.Seed})
	best := sweep.Best().Params

	mixed := phi.RunMixed(phi.MixedConfig{
		Scenario: sc, Modified: best, ModifiedFraction: 0.5,
		Runs: o.runs(), BaseSeed: 550 + o.Seed,
	})
	// All-default reference: the sweep's default point re-expressed as
	// group metrics via a 100%-unmodified mixed run.
	allDef := phi.RunMixed(phi.MixedConfig{
		Scenario: sc, Modified: best, ModifiedFraction: 0.0001, // effectively none
		Runs: o.runs(), BaseSeed: 550 + o.Seed,
	})
	return Fig4Result{
		Modified:      mixed.Modified,
		Unmodified:    mixed.Unmodified,
		AllDefault:    allDef.Unmodified,
		OptimalParams: best.String(),
	}
}

func (r Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: incremental deployment (half modified, half default)\n")
	fmt.Fprintf(&b, "  modified senders use: %s\n", r.OptimalParams)
	fmt.Fprintf(&b, "  %-22s %10s %12s %9s %9s\n", "group", "thr Mbps", "qdelay ms", "loss %", "power")
	row := func(name string, g *phi.GroupMetrics) {
		fmt.Fprintf(&b, "  %-22s %10.2f %12.2f %9.3f %9.2f\n",
			name, g.MeanThroughputMbps(), g.MeanQueueDelayMs(), 100*g.MeanLossRate(), g.MeanPower())
	}
	row("modified (Phi)", &r.Modified)
	row("unmodified (default)", &r.Unmodified)
	row("all-default baseline", &r.AllDefault)
	return b.String()
}

// DeploymentPoint is one adoption level of the deployment curve.
type DeploymentPoint struct {
	Fraction   float64
	Modified   phi.GroupMetrics
	Unmodified phi.GroupMetrics
}

// DeploymentCurveResult generalizes Figure 4 across adoption fractions:
// "since transitioning to the proposed approach is likely to be gradual,
// the question is whether a partial deployment would also offer any
// benefit" — here answered at every level from a single adopter to
// near-total adoption.
type DeploymentCurveResult struct {
	Points        []DeploymentPoint
	OptimalParams string
}

// DeploymentCurve runs the incremental-deployment experiment at several
// modified fractions.
func DeploymentCurve(o Options) DeploymentCurveResult {
	sc := fig2Scenario(highUtilSenders+1, o) // 4 senders: fractions land on whole senders
	sweep := o.sweep(phi.SweepConfig{Scenario: sc, Spec: o.spec(), Runs: o.runs(), BaseSeed: 980 + o.Seed})
	best := sweep.Best().Params

	var out DeploymentCurveResult
	out.OptimalParams = best.String()
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.999} {
		mixed := phi.RunMixed(phi.MixedConfig{
			Scenario: sc, Modified: best, ModifiedFraction: frac,
			Runs: o.runs(), BaseSeed: 985 + o.Seed,
		})
		out.Points = append(out.Points, DeploymentPoint{
			Fraction: frac, Modified: mixed.Modified, Unmodified: mixed.Unmodified,
		})
	}
	return out
}

func (r DeploymentCurveResult) String() string {
	var b strings.Builder
	b.WriteString("Deployment curve: Figure 4 across adoption fractions\n")
	fmt.Fprintf(&b, "  modified senders use: %s\n", r.OptimalParams)
	fmt.Fprintf(&b, "  %-10s %14s %14s %16s %16s\n",
		"adoption", "mod power", "unmod power", "mod qdelay ms", "unmod qdelay ms")
	for _, p := range r.Points {
		unmodPow, unmodQD := "-", "-"
		if len(p.Unmodified.Runs) > 0 && p.Fraction < 0.99 {
			unmodPow = fmt.Sprintf("%.2f", p.Unmodified.MeanPower())
			unmodQD = fmt.Sprintf("%.1f", p.Unmodified.MeanQueueDelayMs())
		}
		fmt.Fprintf(&b, "  %-10.0f%% %13.2f %14s %16.1f %16s\n",
			100*p.Fraction, p.Modified.MeanPower(), unmodPow,
			p.Modified.MeanQueueDelayMs(), unmodQD)
	}
	return b.String()
}
