package experiments

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleReports() []RunReport {
	return []RunReport{
		{Name: "table1", WallSeconds: 0.01,
			Metrics: map[string]float64{"beta": 0.2, "initial_window": 2}},
		{Name: "fig2b", WallSeconds: 12.5,
			Metrics: map[string]float64{"default_power": 3.1, "optimal_power": 9.7, "loss_default": 0.0392}},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	o := Options{Full: false, Seed: 7, Retrain: true, Workers: 4}
	m := NewManifest(o, sampleReports(), 12510*time.Millisecond)
	if m.GridPoints != 27 || m.RunsPerPoint != 3 {
		t.Errorf("coarse grid recorded as %dx%d, want 27x3", m.GridPoints, m.RunsPerPoint)
	}
	if !strings.HasPrefix(m.GoVersion, "go") {
		t.Errorf("go version %q", m.GoVersion)
	}
	if got := m.Options(); got.Seed != 7 || got.Full || !got.Retrain || got.Workers != 0 {
		t.Errorf("Options() = %+v (workers must not be restored)", got)
	}

	path := filepath.Join(t.TempDir(), "sub", "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", m, got)
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestCompareManifestsIdentical(t *testing.T) {
	m := NewManifest(Options{}, sampleReports(), time.Second)
	fresh := NewManifest(Options{}, sampleReports(), 3*time.Second) // wall differs: ignored
	if mm := CompareManifests(m, fresh, 0); len(mm) != 0 {
		t.Fatalf("identical metrics flagged: %v", mm)
	}
}

func TestCompareManifestsDrift(t *testing.T) {
	archived := NewManifest(Options{}, sampleReports(), time.Second)
	perturbed := sampleReports()
	perturbed[1].Metrics = map[string]float64{"default_power": 3.1, "optimal_power": 8.0, "loss_default": 0.0392}
	fresh := NewManifest(Options{}, perturbed, time.Second)

	mm := CompareManifests(archived, fresh, 0.05)
	if len(mm) != 1 {
		t.Fatalf("mismatches = %v, want exactly the perturbed metric", mm)
	}
	if mm[0].Experiment != "fig2b" || mm[0].Metric != "optimal_power" {
		t.Errorf("mismatch names %s/%s", mm[0].Experiment, mm[0].Metric)
	}
	if s := mm[0].String(); !strings.Contains(s, "fig2b") || !strings.Contains(s, "optimal_power") {
		t.Errorf("mismatch rendering %q must name figure and metric", s)
	}
	// Within 5% tolerance the same drift passes at a looser setting.
	if mm := CompareManifests(archived, fresh, 0.2); len(mm) != 0 {
		t.Errorf("20%% tolerance should absorb the drift: %v", mm)
	}
}

func TestCompareManifestsMissing(t *testing.T) {
	archived := NewManifest(Options{}, sampleReports(), time.Second)
	fresh := NewManifest(Options{}, sampleReports()[:1], time.Second)
	mm := CompareManifests(archived, fresh, 0.05)
	if len(mm) != 1 || mm[0].Experiment != "fig2b" {
		t.Fatalf("mismatches = %v, want missing-experiment entry for fig2b", mm)
	}
	if !strings.Contains(mm[0].String(), "missing") {
		t.Errorf("rendering %q should say missing", mm[0])
	}

	// A metric the archive records but the fresh run dropped.
	dropped := sampleReports()
	dropped[1].Metrics = map[string]float64{"default_power": 3.1, "optimal_power": 9.7}
	mm = CompareManifests(archived, NewManifest(Options{}, dropped, time.Second), 0.05)
	if len(mm) != 1 || mm[0].Metric != "loss_default" || !math.IsNaN(mm[0].Got) {
		t.Fatalf("mismatches = %v, want missing loss_default", mm)
	}
}

func TestWithinTolerance(t *testing.T) {
	cases := []struct {
		want, got, tol float64
		ok             bool
	}{
		{1, 1, 0, true},
		{0, 0, 0, true},
		{1e-12, -1e-12, 0, true}, // both below the absolute floor
		{100, 104, 0.05, true},
		{100, 106, 0.05, false},
		{-100, -104, 0.05, true},
		{0, 0.5, 0.05, false},
		{math.NaN(), math.NaN(), 0.05, true},
		{math.NaN(), 1, 0.05, false},
	}
	for _, c := range cases {
		if got := withinTolerance(c.want, c.got, c.tol); got != c.ok {
			t.Errorf("withinTolerance(%g, %g, %g) = %v, want %v", c.want, c.got, c.tol, got, c.ok)
		}
	}
}

// TestHarnessRunsAndReports exercises the harness end to end on the two
// instant experiments: progress events, rendered output, and summary
// metrics all flow into the reports a manifest is built from.
func TestHarnessRunsAndReports(t *testing.T) {
	exps, err := Resolve("table1,table2")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgress(nil)
	var out strings.Builder
	h := &Harness{Opts: Options{Progress: prog}, Out: &out}
	reports := h.Run(exps)

	if len(reports) != 2 || reports[0].Name != "table1" || reports[1].Name != "table2" {
		t.Fatalf("reports = %+v", reports)
	}
	if reports[0].Metrics["initial_ssthresh"] != 65536 {
		t.Errorf("table1 metrics = %v", reports[0].Metrics)
	}
	if reports[1].Metrics["grid_points"] != 27 {
		t.Errorf("table2 metrics = %v", reports[1].Metrics)
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "Table 2") {
		t.Errorf("rendered output incomplete:\n%s", out.String())
	}
	s := prog.Snapshot()
	if len(s.Experiments) != 2 || s.Experiments[0].State != "done" || s.Experiments[1].State != "done" {
		t.Errorf("progress after run = %+v", s.Experiments)
	}

	m := NewManifest(h.Opts, reports, time.Second)
	if len(m.Experiments) != 2 || m.Results[0].Metrics["beta"] != 0.2 {
		t.Errorf("manifest = %+v", m)
	}
}
