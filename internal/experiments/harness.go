package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Harness executes a resolved list of experiments in order, reporting
// each phase and grid point to Options.Progress, streaming rendered
// results, exporting CSV series, and collecting the per-experiment
// reports a run manifest is built from.
type Harness struct {
	// Opts configures every experiment. Opts.Progress, when set, receives
	// Plan/Start/Finish events around the per-sweep grid reporting.
	Opts Options
	// Out receives each experiment's rendered result (nil discards).
	Out io.Writer
	// CSVDir, when non-empty, receives <name>.csv for every result that
	// exports series.
	CSVDir string
	// Log receives harness notices — CSV paths written, export failures
	// (which do not abort the run). Nil discards.
	Log io.Writer
}

// RunReport is one executed experiment.
type RunReport struct {
	Name        string
	Output      fmt.Stringer
	WallSeconds float64
	// Metrics holds the result's summary scalars (nil when the result
	// type reports none).
	Metrics map[string]float64
}

// Run executes the experiments and returns one report per experiment.
func (h *Harness) Run(exps []Experiment) []RunReport {
	logf := func(format string, args ...any) {
		if h.Log != nil {
			fmt.Fprintf(h.Log, format+"\n", args...)
		}
	}
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name
	}
	h.Opts.Progress.Plan(names)

	reports := make([]RunReport, 0, len(exps))
	for _, e := range exps {
		h.Opts.Progress.StartExperiment(e.Name)
		begin := time.Now()
		out := e.Run(h.Opts)
		wall := time.Since(begin)
		h.Opts.Progress.FinishExperiment(e.Name, wall)

		if h.Out != nil {
			fmt.Fprintln(h.Out, out)
		}
		if h.CSVDir != "" {
			if cw, ok := out.(CSVWriter); ok {
				path := filepath.Join(h.CSVDir, e.Name+".csv")
				if err := exportCSVFile(path, cw); err != nil {
					logf("csv %s: %v", e.Name, err)
				} else {
					logf("wrote %s", path)
				}
			}
		}
		rep := RunReport{Name: e.Name, Output: out, WallSeconds: wall.Seconds()}
		if mr, ok := out.(MetricsReporter); ok {
			rep.Metrics = mr.SummaryMetrics()
		}
		reports = append(reports, rep)
	}
	return reports
}

func exportCSVFile(path string, cw CSVWriter) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cw.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
