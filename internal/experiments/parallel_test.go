package experiments

import (
	"reflect"
	"testing"
)

// TestRunParallelMatchesSerial pins the contract behind Options.Workers:
// every run is independently seeded and stored by index, so a parallel
// ablation is bit-identical to the serial one.
func TestRunParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := AblationQueueDiscipline(Options{Workers: 1})
	parallel := AblationQueueDiscipline(Options{Workers: 4})
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel ablation diverged from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// TestRunParallelProgressAccounting checks that runParallel announces
// exactly the points it completes, with labels attributing them to the
// running phase.
func TestRunParallelProgressAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog := NewProgress(nil)
	prog.StartExperiment("ablation-qdisc")
	o := Options{Workers: 2, Progress: prog}
	AblationQueueDiscipline(o)
	s := prog.Snapshot()
	if s.Total == 0 || s.Total != s.Completed {
		t.Fatalf("grid accounting %d/%d, want all announced points completed", s.Completed, s.Total)
	}
	if len(s.Slowest) == 0 || s.Slowest[0].Experiment != "ablation-qdisc" {
		t.Errorf("slowest leaderboard = %+v", s.Slowest)
	}
	if s.Slowest[0].WallSeconds <= 0 {
		t.Errorf("point wall time not recorded: %+v", s.Slowest[0])
	}
}
