package phi

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// fakeClock is an adjustable clock for server tests.
type fakeClock struct{ now sim.Time }

func (f *fakeClock) fn() func() sim.Time { return func() sim.Time { return f.now } }

func TestServerTracksActiveSenders(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{})
	const path = PathKey("edge/10.0.0.0-24")
	for i := 0; i < 5; i++ {
		if err := s.ReportStart(path); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ActiveSenders(path); got != 5 {
		t.Errorf("active = %d, want 5", got)
	}
	ctx, err := s.Lookup(path)
	if err != nil || ctx.N != 5 {
		t.Errorf("Lookup N = %d (err %v), want 5", ctx.N, err)
	}
	for i := 0; i < 7; i++ { // more ends than starts must not go negative
		_ = s.ReportEnd(path, Report{})
	}
	if got := s.ActiveSenders(path); got != 0 {
		t.Errorf("active after surplus ends = %d, want 0", got)
	}
}

func TestServerUtilizationFromReports(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{Window: 10 * sim.Second})
	const path = PathKey("bottleneck")
	s.RegisterPath(path, 15_000_000)
	// Reports totalling 7.5 Mbit/s over the 10s window => u = 0.5.
	for i := 0; i < 10; i++ {
		clk.now += sim.Second
		_ = s.ReportEnd(path, Report{Bytes: 937_500, Duration: sim.Second})
	}
	ctx, _ := s.Lookup(path)
	if math.Abs(ctx.U-0.5) > 0.11 {
		t.Errorf("u = %v, want ~0.5", ctx.U)
	}
	// After the window passes with no reports, utilization decays to 0.
	clk.now += 20 * sim.Second
	ctx, _ = s.Lookup(path)
	if ctx.U != 0 {
		t.Errorf("u after idle window = %v, want 0", ctx.U)
	}
}

func TestServerUtilizationClampedToOne(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{Window: sim.Second})
	const path = PathKey("p")
	s.RegisterPath(path, 1_000)
	_ = s.ReportEnd(path, Report{Bytes: 1 << 30})
	ctx, _ := s.Lookup(path)
	if ctx.U != 1 {
		t.Errorf("u = %v, want clamped to 1", ctx.U)
	}
}

func TestServerLearnsCapacityWhenUnregistered(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{Window: 10 * sim.Second})
	const path = PathKey("unknown")
	_ = s.ReportEnd(path, Report{Bytes: 1_000_000})
	ctx, _ := s.Lookup(path)
	// With learned capacity = max observed rate, u should be 1 at peak.
	if ctx.U != 1 {
		t.Errorf("u at observed peak = %v, want 1", ctx.U)
	}
}

func TestServerQueueEstimateFromRTTs(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{})
	const path = PathKey("p")
	_ = s.ReportEnd(path, Report{AvgRTT: 150 * sim.Millisecond, MinRTT: 150 * sim.Millisecond})
	ctx, _ := s.Lookup(path)
	if ctx.Q != 0 {
		t.Errorf("q with no queueing = %v, want 0", ctx.Q)
	}
	// A congested flow reports RTT well above the path minimum.
	_ = s.ReportEnd(path, Report{AvgRTT: 250 * sim.Millisecond, MinRTT: 160 * sim.Millisecond})
	ctx, _ = s.Lookup(path)
	if ctx.Q <= 0 || ctx.Q > 100*sim.Millisecond {
		t.Errorf("q = %v, want in (0, 100ms]", ctx.Q)
	}
}

func TestServerPathIsolation(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{})
	_ = s.ReportStart("a")
	ctx, _ := s.Lookup("b")
	if ctx.N != 0 {
		t.Error("state leaked across paths")
	}
	if s.PathCount() != 2 {
		t.Errorf("PathCount = %d, want 2", s.PathCount())
	}
}

func TestOracleLookup(t *testing.T) {
	o := Oracle{Fn: func() Context { return Context{U: 0.7, Q: 5 * sim.Millisecond, N: 3} }}
	ctx, err := o.Lookup("anything")
	if err != nil || ctx.U != 0.7 || ctx.N != 3 {
		t.Errorf("oracle lookup = %v, %v", ctx, err)
	}
}

func TestPolicyFirstMatchWins(t *testing.T) {
	p := &Policy{
		Rules: []Rule{
			{MaxU: 0.3, Params: tcp.CubicParams{InitialWindow: 32, InitialSsthresh: 256, Beta: 0.2}},
			{MaxU: 0.9, Params: tcp.CubicParams{InitialWindow: 4, InitialSsthresh: 32, Beta: 0.3}},
		},
		Default: tcp.CubicParams{InitialWindow: 2, InitialSsthresh: 16, Beta: 0.5},
	}
	if got := p.Params(Context{U: 0.1}); got.InitialWindow != 32 {
		t.Errorf("low-u params = %v", got)
	}
	if got := p.Params(Context{U: 0.5}); got.InitialWindow != 4 {
		t.Errorf("mid-u params = %v", got)
	}
	if got := p.Params(Context{U: 0.95}); got.InitialWindow != 2 {
		t.Errorf("catch-all params = %v", got)
	}
}

func TestPolicyDimensions(t *testing.T) {
	p := &Policy{
		Rules: []Rule{
			{MaxU: 0.5, MaxN: 4, MaxQ: 10 * sim.Millisecond,
				Params: tcp.CubicParams{InitialWindow: 64, InitialSsthresh: 256, Beta: 0.2}},
		},
		Default: tcp.DefaultCubicParams(),
	}
	ok := Context{U: 0.4, N: 2, Q: 5 * sim.Millisecond}
	if p.Params(ok).InitialWindow != 64 {
		t.Error("matching context did not hit rule")
	}
	for _, bad := range []Context{
		{U: 0.6, N: 2, Q: 5 * sim.Millisecond},
		{U: 0.4, N: 9, Q: 5 * sim.Millisecond},
		{U: 0.4, N: 2, Q: 50 * sim.Millisecond},
	} {
		if p.Params(bad).InitialWindow == 64 {
			t.Errorf("context %v should not match", bad)
		}
	}
}

func TestDefaultPolicyMonotoneConservatism(t *testing.T) {
	p := DefaultPolicy()
	prevIW := math.MaxInt
	for _, u := range []float64{0.1, 0.5, 0.7, 0.99} {
		params := p.Params(Context{U: u})
		if !params.Valid() {
			t.Fatalf("invalid params at u=%v: %v", u, params)
		}
		if params.InitialWindow > prevIW {
			t.Errorf("initial window grew with utilization at u=%v", u)
		}
		prevIW = params.InitialWindow
	}
	if p.String() == "" {
		t.Error("empty policy string")
	}
}

// failingSource always errors, to exercise fallback.
type failingSource struct{}

func (failingSource) Lookup(PathKey) (Context, error) { return Context{}, errors.New("down") }

func TestClientFallsBackWhenServerDown(t *testing.T) {
	c := &Client{Source: failingSource{}, Policy: DefaultPolicy(), Path: "p"}
	params := c.ParamsForNewConnection()
	if params != tcp.DefaultCubicParams() {
		t.Errorf("fallback params = %v, want defaults", params)
	}
	if c.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", c.Fallbacks)
	}
	cc := c.CC()()
	if cc.Name() != "cubic" {
		t.Error("CC factory broken")
	}
}

func TestClientNilSourceFallsBack(t *testing.T) {
	c := &Client{Path: "p"}
	if c.ParamsForNewConnection() != tcp.DefaultCubicParams() {
		t.Error("nil source should yield defaults")
	}
}

func TestClientUsesContext(t *testing.T) {
	clk := &fakeClock{}
	srv := NewServer(clk.fn(), ServerConfig{})
	c := &Client{Source: srv, Reporter: srv, Policy: DefaultPolicy(), Path: "p"}
	// Idle path: low utilization -> aggressive params.
	params := c.ParamsForNewConnection()
	if params.InitialWindow != 64 {
		t.Errorf("idle-path params = %v, want iw=64 band", params)
	}
	if c.LastContext.N != 0 {
		t.Errorf("context N = %d", c.LastContext.N)
	}
	// Reports flow through.
	c.OnStart(1)
	if srv.ActiveSenders("p") != 1 {
		t.Error("OnStart did not register")
	}
	st := &tcp.FlowStats{BytesAcked: 1000, Start: 0, End: sim.Second,
		RTTCount: 1, RTTSum: 200 * sim.Millisecond, MinRTT: 150 * sim.Millisecond}
	c.OnEnd(st)
	if srv.ActiveSenders("p") != 0 {
		t.Error("OnEnd did not unregister")
	}
}

func TestReportFromStats(t *testing.T) {
	st := &tcp.FlowStats{BytesAcked: 5000, Start: sim.Second, End: 3 * sim.Second,
		PacketsSent: 100, Retransmits: 10,
		RTTCount: 2, RTTSum: 400 * sim.Millisecond, MinRTT: 150 * sim.Millisecond}
	r := ReportFromStats(st)
	if r.Bytes != 5000 || r.Duration != 2*sim.Second {
		t.Errorf("bytes/duration = %d/%v", r.Bytes, r.Duration)
	}
	if r.AvgRTT != 200*sim.Millisecond || r.MinRTT != 150*sim.Millisecond {
		t.Errorf("rtts = %v/%v", r.AvgRTT, r.MinRTT)
	}
	if r.LossRate != 0.1 {
		t.Errorf("loss = %v", r.LossRate)
	}
}

func TestTable2SpecSize(t *testing.T) {
	spec := Table2Spec()
	if len(spec.Ssthresh) != 8 || len(spec.WindowInit) != 8 || len(spec.Beta) != 9 {
		t.Fatalf("Table 2 dimensions wrong: %d/%d/%d",
			len(spec.Ssthresh), len(spec.WindowInit), len(spec.Beta))
	}
	if got := len(spec.Points()); got != 576 {
		t.Errorf("grid size = %d, want 576", got)
	}
	for _, p := range spec.Points() {
		if !p.Valid() {
			t.Fatalf("invalid grid point %v", p)
		}
	}
}

func TestBetaOnlySpec(t *testing.T) {
	pts := BetaOnlySpec().Points()
	if len(pts) != 9 {
		t.Fatalf("beta-only grid = %d points, want 9", len(pts))
	}
	for _, p := range pts {
		if p.InitialSsthresh != 65536 || p.InitialWindow != 2 {
			t.Errorf("beta-only point has non-default iw/ssthresh: %v", p)
		}
	}
}

func TestServerActiveTTLExpiry(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{ActiveTTL: 10 * sim.Second})
	const path = PathKey("p")
	_ = s.ReportStart(path)
	clk.now = 5 * sim.Second
	_ = s.ReportStart(path)
	if got := s.ActiveSenders(path); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	// The first registration ages out; the second survives.
	clk.now = 12 * sim.Second
	if got := s.ActiveSenders(path); got != 1 {
		t.Errorf("active after TTL = %d, want 1 (crashed client expired)", got)
	}
	clk.now = 30 * sim.Second
	if got := s.ActiveSenders(path); got != 0 {
		t.Errorf("active after full expiry = %d, want 0", got)
	}
	// Negative TTL disables expiry.
	clk2 := &fakeClock{}
	s2 := NewServer(clk2.fn(), ServerConfig{ActiveTTL: -1})
	_ = s2.ReportStart(path)
	clk2.now = sim.Time(1) << 40
	if got := s2.ActiveSenders(path); got != 1 {
		t.Errorf("disabled TTL expired a sender")
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	orig := DefaultPolicy()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Rules) != len(orig.Rules) {
		t.Fatalf("rules %d vs %d", len(loaded.Rules), len(orig.Rules))
	}
	if loaded.Default != orig.Default {
		t.Errorf("default %v vs %v", loaded.Default, orig.Default)
	}
	// The loaded policy makes the same decisions.
	for _, u := range []float64{0.1, 0.45, 0.7, 0.99} {
		ctx := Context{U: u}
		if loaded.Params(ctx) != orig.Params(ctx) {
			t.Errorf("decision differs at u=%v: %v vs %v", u, loaded.Params(ctx), orig.Params(ctx))
		}
	}
	// Infinite MaxU serializes as an absent bound and still matches all.
	if loaded.Rules[len(loaded.Rules)-1].MaxU != 0 {
		t.Errorf("catch-all MaxU = %v after round trip, want 0 (wildcard)", loaded.Rules[len(loaded.Rules)-1].MaxU)
	}
}

func TestLoadPolicyValidates(t *testing.T) {
	bad := `{"rules":[{"params":{"initial_window":0,"initial_ssthresh":16,"beta":0.2}}],
	         "default":{"initial_window":2,"initial_ssthresh":65536,"beta":0.2}}`
	if _, err := LoadPolicy(strings.NewReader(bad)); err == nil {
		t.Error("invalid rule params accepted")
	}
	badDefault := `{"rules":[],"default":{"initial_window":0,"initial_ssthresh":0,"beta":9}}`
	if _, err := LoadPolicy(strings.NewReader(badDefault)); err == nil {
		t.Error("invalid default accepted")
	}
	if _, err := LoadPolicy(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestLoadPolicyHandEdited(t *testing.T) {
	// The format an operator would write by hand.
	src := `{
	  "rules": [
	    {"max_utilization": 0.5, "max_senders": 10, "max_queue_ms": 50,
	     "params": {"initial_window": 32, "initial_ssthresh": 64, "beta": 0.3}}
	  ],
	  "default": {"initial_window": 2, "initial_ssthresh": 65536, "beta": 0.2}
	}`
	p, err := LoadPolicy(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if r.MaxU != 0.5 || r.MaxN != 10 || r.MaxQ != 50*sim.Millisecond {
		t.Errorf("rule = %+v", r)
	}
	if got := p.Params(Context{U: 0.4, N: 5, Q: 10 * sim.Millisecond}); got.InitialWindow != 32 {
		t.Errorf("params = %v", got)
	}
	if got := p.Params(Context{U: 0.9}); got != tcp.DefaultCubicParams() {
		t.Errorf("fallthrough = %v", got)
	}
}

func TestServerReportProgressKeepsSenderActive(t *testing.T) {
	clk := &fakeClock{}
	s := NewServer(clk.fn(), ServerConfig{Window: 10 * sim.Second})
	const path = PathKey("p")
	s.RegisterPath(path, 8_000_000)
	_ = s.ReportStart(path)

	// A long-running connection streams progress every second.
	for i := 0; i < 5; i++ {
		clk.now += sim.Second
		if err := s.ReportProgress(path, Report{Bytes: 500_000,
			AvgRTT: 200 * sim.Millisecond, MinRTT: 150 * sim.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	// Still registered as active, and the utilization reflects the flow.
	if got := s.ActiveSenders(path); got != 1 {
		t.Errorf("active = %d, want 1 (progress must not retire)", got)
	}
	ctx, _ := s.Lookup(path)
	if ctx.U < 0.2 {
		t.Errorf("u = %v, want substantial from progress reports", ctx.U)
	}
	if ctx.Q <= 0 {
		t.Errorf("q = %v, want > 0", ctx.Q)
	}
	// The final end report retires it.
	_ = s.ReportEnd(path, Report{Bytes: 100_000})
	if got := s.ActiveSenders(path); got != 0 {
		t.Errorf("active after end = %d", got)
	}
}
