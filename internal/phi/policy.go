package phi

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// Rule maps a region of congestion-context space to Cubic parameters. A
// rule matches when every set bound holds; zero-valued bounds are
// wildcards (MaxU of 0 means "no utilization bound" — use math.Inf(1) or
// 1.01 to express a catch-all explicitly).
type Rule struct {
	// MaxU matches contexts with U <= MaxU (0 = any).
	MaxU float64
	// MaxN matches contexts with N <= MaxN (0 = any).
	MaxN int
	// MaxQ matches contexts with Q <= MaxQ (0 = any).
	MaxQ sim.Time
	// Params are the Cubic parameters to use in this region.
	Params tcp.CubicParams
}

func (r Rule) matches(ctx Context) bool {
	if r.MaxU > 0 && ctx.U > r.MaxU {
		return false
	}
	if r.MaxN > 0 && ctx.N > r.MaxN {
		return false
	}
	if r.MaxQ > 0 && ctx.Q > r.MaxQ {
		return false
	}
	return true
}

// Policy turns a congestion context into Cubic parameters: the "optimal
// parameter setting for the current conditions" of Section 2.2. Rules are
// evaluated in order; the first match wins; Default applies otherwise.
type Policy struct {
	Rules   []Rule
	Default tcp.CubicParams
}

// Params returns the parameters for the given context.
func (p *Policy) Params(ctx Context) tcp.CubicParams {
	for _, r := range p.Rules {
		if r.matches(ctx) {
			return r.Params
		}
	}
	if p.Default.Valid() {
		return p.Default
	}
	return tcp.DefaultCubicParams()
}

// String renders the policy as a table.
func (p *Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy (%d rules):\n", len(p.Rules))
	for _, r := range p.Rules {
		u := "any"
		if r.MaxU > 0 {
			u = fmt.Sprintf("<=%.2f", r.MaxU)
		}
		n := "any"
		if r.MaxN > 0 {
			n = fmt.Sprintf("<=%d", r.MaxN)
		}
		q := "any"
		if r.MaxQ > 0 {
			q = fmt.Sprintf("<=%v", r.MaxQ)
		}
		fmt.Fprintf(&b, "  u %-8s n %-6s q %-8s -> %v\n", u, n, q, r.Params)
	}
	fmt.Fprintf(&b, "  default -> %v\n", p.Default)
	return b.String()
}

// DefaultPolicy is the policy distilled from this repository's own
// parameter sweeps (regenerate with `phi-experiments -run policy`; the
// band optima below are the sweep winners), consistent with the paper's
// findings: at low utilization a large initial window with a tightly
// bounded slow-start threshold discovers bandwidth fast without
// overshoot; as congestion rises the initial window shrinks and the
// back-off sharpens; near saturation senders launch minimally and back
// off hard (the Figure 2c beta effect).
func DefaultPolicy() *Policy {
	return &Policy{
		Rules: []Rule{
			{MaxU: 0.3, Params: tcp.CubicParams{InitialWindow: 64, InitialSsthresh: 16, Beta: 0.2}},
			{MaxU: 0.6, Params: tcp.CubicParams{InitialWindow: 16, InitialSsthresh: 16, Beta: 0.5}},
			{MaxU: 0.85, Params: tcp.CubicParams{InitialWindow: 8, InitialSsthresh: 16, Beta: 0.8}},
			{MaxU: math.Inf(1), Params: tcp.CubicParams{InitialWindow: 2, InitialSsthresh: 16, Beta: 0.8}},
		},
		Default: tcp.DefaultCubicParams(),
	}
}
