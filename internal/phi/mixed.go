package phi

import (
	"repro/internal/tcp"
	"repro/internal/workload"
)

// MixedConfig sets up the incremental-deployment experiment of Section
// 2.2.3 / Figure 4: a fraction of senders ("modified") adopt the
// Phi-optimal parameters while the rest stay on defaults.
type MixedConfig struct {
	// Scenario is the workload template (CC is overridden).
	Scenario workload.Scenario
	// Modified is the parameter setting the adopting senders use — the
	// setting that would have been optimal had everyone cooperated.
	Modified tcp.CubicParams
	// ModifiedFraction is the adopting share of senders (paper: 0.5).
	ModifiedFraction float64
	// Runs and BaseSeed mirror SweepConfig.
	Runs     int
	BaseSeed int64
}

// GroupMetrics aggregates one sender group across runs.
type GroupMetrics struct {
	Runs []RunMetrics
}

func (g *GroupMetrics) mean(f func(RunMetrics) float64) float64 {
	if len(g.Runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range g.Runs {
		sum += f(r)
	}
	return sum / float64(len(g.Runs))
}

// MeanThroughputMbps averages group throughput across runs.
func (g *GroupMetrics) MeanThroughputMbps() float64 {
	return g.mean(func(r RunMetrics) float64 { return r.ThroughputMbps })
}

// MeanQueueDelayMs averages group queueing delay across runs.
func (g *GroupMetrics) MeanQueueDelayMs() float64 {
	return g.mean(func(r RunMetrics) float64 { return r.QueueDelayMs })
}

// MeanLossRate averages group loss across runs.
func (g *GroupMetrics) MeanLossRate() float64 {
	return g.mean(func(r RunMetrics) float64 { return r.LossRate })
}

// MeanPower averages the group objective across runs.
func (g *GroupMetrics) MeanPower() float64 {
	return g.mean(func(r RunMetrics) float64 { return r.Power })
}

// MixedResult separates the two deployment groups.
type MixedResult struct {
	Modified   GroupMetrics
	Unmodified GroupMetrics
}

// RunMixed executes the incremental-deployment experiment.
func RunMixed(cfg MixedConfig) MixedResult {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.ModifiedFraction <= 0 {
		cfg.ModifiedFraction = 0.5
	}
	n := cfg.Scenario.Dumbbell.Senders
	cut := int(cfg.ModifiedFraction * float64(n))
	isModified := func(sender int) bool { return sender < cut }

	var out MixedResult
	for i := 0; i < cfg.Runs; i++ {
		sc := cfg.Scenario
		sc.Seed = cfg.BaseSeed + int64(i)
		sc.CC = func(sender int) func() tcp.CongestionControl {
			params := tcp.DefaultCubicParams()
			if isModified(sender) {
				params = cfg.Modified
			}
			return func() tcp.CongestionControl { return tcp.NewCubic(params) }
		}
		r := workload.Run(sc)
		mod := groupMetrics(&r, isModified)
		unmod := groupMetrics(&r, func(s int) bool { return !isModified(s) })
		out.Modified.Runs = append(out.Modified.Runs, mod)
		out.Unmodified.Runs = append(out.Unmodified.Runs, unmod)
	}
	return out
}

// groupMetrics computes RunMetrics over the subset of flows owned by
// senders matching keep. Loss is the group's sender-side retransmission
// rate, since link drops cannot be attributed per group.
func groupMetrics(r *workload.Result, keep func(sender int) bool) RunMetrics {
	var bits, onSecs float64
	var rttSum, rttN int64
	var rex, sent int64
	for i := range r.Flows {
		if !keep(r.SenderOf[i]) {
			continue
		}
		f := &r.Flows[i]
		if f.BytesAcked > 0 && f.Duration() > 0 {
			bits += float64(f.BytesAcked) * 8
			onSecs += f.Duration().Seconds()
		}
		rttSum += int64(f.RTTSum)
		rttN += f.RTTCount
		rex += f.Retransmits
		sent += f.PacketsSent
	}
	m := RunMetrics{Utilization: r.Utilization}
	if onSecs > 0 {
		m.ThroughputMbps = bits / onSecs / 1e6
	}
	var meanRTT float64
	if rttN > 0 {
		meanRTT = float64(rttSum) / float64(rttN)
		q := meanRTT - float64(r.PropRTT)
		if q < 0 {
			q = 0
		}
		m.QueueDelayMs = q / 1e6
	}
	if sent > 0 {
		m.LossRate = float64(rex) / float64(sent)
	}
	if meanRTT > 0 {
		d := meanRTT / 1e9
		m.Power = m.ThroughputMbps * (1 - m.LossRate) / d
	}
	return m
}
