package phi_test

import (
	"fmt"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// The complete Phi loop in miniature: a context server accumulates
// connection-boundary reports; new connections look up the congestion
// context and pick Cubic parameters from the policy.
func Example() {
	var now sim.Time
	server := phi.NewServer(func() sim.Time { return now }, phi.ServerConfig{})
	server.RegisterPath("bottleneck", 15_000_000)

	client := &phi.Client{
		Source:   server,
		Reporter: server,
		Policy:   phi.DefaultPolicy(),
		Path:     "bottleneck",
	}

	// An idle path: the policy hands out an aggressive launch.
	fmt.Println("idle:", client.ParamsForNewConnection())

	// Connections report their experience; the estimates sharpen.
	client.OnStart(1)
	now = sim.Second
	client.OnEnd(&tcp.FlowStats{
		BytesAcked: 1_500_000, Start: 0, End: sim.Second,
		RTTCount: 10, RTTSum: 1800 * sim.Millisecond, MinRTT: 150 * sim.Millisecond,
	})
	ctx, _ := server.Lookup("bottleneck")
	fmt.Printf("context after report: u=%.1f n=%d\n", ctx.U, ctx.N)

	// Output:
	// idle: iw=64 ssthresh=16 beta=0.2
	// context after report: u=0.1 n=0
}

// Policies serialize to stable, hand-editable JSON for distribution to a
// sender fleet.
func ExamplePolicy_WriteTo() {
	p := &phi.Policy{
		Rules: []phi.Rule{
			{MaxU: 0.5, Params: tcp.CubicParams{InitialWindow: 32, InitialSsthresh: 64, Beta: 0.3}},
		},
		Default: tcp.DefaultCubicParams(),
	}
	p.WriteTo(fmtWriter{})
	// Output:
	// {
	//   "rules": [
	//     {
	//       "max_utilization": 0.5,
	//       "params": {
	//         "initial_window": 32,
	//         "initial_ssthresh": 64,
	//         "beta": 0.3
	//       }
	//     }
	//   ],
	//   "default": {
	//     "initial_window": 2,
	//     "initial_ssthresh": 65536,
	//     "beta": 0.2
	//   }
	// }
}

// fmtWriter prints to stdout for the example.
type fmtWriter struct{}

func (fmtWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
