package phi

import (
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Client is the sender-side embodiment of Phi: at each connection start it
// looks up the congestion context and picks Cubic parameters from the
// policy; at each connection end it reports the flow's experience back.
//
// If the context source fails (server unreachable, malformed reply), the
// client silently falls back to the default parameters — a Phi sender must
// never be worse off than an unmodified one just because the control plane
// is down.
type Client struct {
	// Source answers lookups; Reporter (optional, often the same object)
	// receives start/end reports.
	Source   ContextSource
	Reporter Reporter
	// Policy maps contexts to parameters; nil means DefaultPolicy.
	Policy *Policy
	// Path is the shared-state key this client's flows ride on.
	Path PathKey

	// Fallbacks counts lookups that failed and fell back to defaults.
	Fallbacks uint64
	// LastContext is the most recent successfully fetched context.
	LastContext Context
}

// ParamsForNewConnection performs the connection-start lookup.
func (c *Client) ParamsForNewConnection() tcp.CubicParams {
	pol := c.Policy
	if pol == nil {
		pol = DefaultPolicy()
	}
	if c.Source == nil {
		c.Fallbacks++
		return pol.Default
	}
	ctx, err := c.Source.Lookup(c.Path)
	if err != nil {
		c.Fallbacks++
		if pol.Default.Valid() {
			return pol.Default
		}
		return tcp.DefaultCubicParams()
	}
	c.LastContext = ctx
	return pol.Params(ctx)
}

// CC returns a congestion-controller factory that consults the context
// server per connection — the hook point for workload.SourceConfig.CC.
func (c *Client) CC() func() tcp.CongestionControl {
	return func() tcp.CongestionControl {
		return tcp.NewCubic(c.ParamsForNewConnection())
	}
}

// OnStart is the connection-start report hook.
func (c *Client) OnStart(flow sim.FlowID) {
	if c.Reporter != nil {
		_ = c.Reporter.ReportStart(c.Path) // best effort
	}
}

// OnEnd is the connection-end report hook.
func (c *Client) OnEnd(st *tcp.FlowStats) {
	if c.Reporter == nil {
		return
	}
	_ = c.Reporter.ReportEnd(c.Path, ReportFromStats(st)) // best effort
}

// ReportFromStats summarizes a finished flow for the context server.
func ReportFromStats(st *tcp.FlowStats) Report {
	return Report{
		Bytes:    st.BytesAcked,
		Duration: st.Duration(),
		AvgRTT:   st.AvgRTT(),
		MinRTT:   st.MinRTT,
		LossRate: st.LossRate(),
	}
}
