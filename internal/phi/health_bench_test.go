package phi

// Benchmarks isolating the health-monitor overhead on the context
// server's hot path. The disabled case (no monitor attached) is the
// acceptance bar: it must be indistinguishable from the plain server —
// the hook is a single nil check. The attached case adds one sync.Map
// load plus two atomic adds (the monitor's ingestion path).

import (
	"testing"

	"repro/internal/health"
	"repro/internal/sim"
)

func benchHealthServer(attach bool) *Server {
	var now sim.Time
	s := NewServer(func() sim.Time { now += sim.Millisecond; return now }, ServerConfig{})
	if attach {
		// Not started: ingestion cost only, no rotation goroutine.
		s.SetHealth(health.NewMonitor(health.Config{}))
	}
	return s
}

func benchHealthLookup(b *testing.B, attach bool) {
	s := benchHealthServer(attach)
	s.RegisterPath("p", 1e9)
	if err := s.ReportStart("p"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup("p"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerLookupHealthDisabled(b *testing.B) { benchHealthLookup(b, false) }
func BenchmarkServerLookupHealthAttached(b *testing.B) { benchHealthLookup(b, true) }

func benchHealthReportCycle(b *testing.B, attach bool) {
	s := benchHealthServer(attach)
	s.RegisterPath("p", 1e9)
	r := Report{Bytes: 1 << 16, Duration: 100 * sim.Millisecond, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReportStart("p"); err != nil {
			b.Fatal(err)
		}
		if err := s.ReportEnd("p", r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerReportCycleHealthDisabled(b *testing.B) { benchHealthReportCycle(b, false) }
func BenchmarkServerReportCycleHealthAttached(b *testing.B) { benchHealthReportCycle(b, true) }
