package phi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// TestServerConcurrentStress hammers one Server from many goroutines —
// lookups, start/end/progress reports, and every read-side accessor —
// over a spread of paths. It asserts nothing subtle; its value is under
// `go test -race`, where any unsynchronized access to server state
// (including the stats counters, once plain exported fields read without
// the mutex) fails the run.
func TestServerConcurrentStress(t *testing.T) {
	var tick atomic.Int64
	clock := func() sim.Time { return sim.Time(tick.Add(1) * int64(sim.Millisecond)) }
	srv := NewServer(clock, ServerConfig{})

	const (
		workers = 16
		paths   = 32
		ops     = 400
	)
	for i := 0; i < paths; i += 2 { // half calibrated, half learned
		srv.RegisterPath(pathN(i), 10_000_000)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				p := pathN((w*ops + i) % paths)
				switch i % 5 {
				case 0:
					if _, err := srv.Lookup(p); err != nil {
						t.Errorf("Lookup: %v", err)
					}
				case 1:
					srv.ReportStart(p)
				case 2:
					srv.ReportEnd(p, Report{Bytes: 40_000, AvgRTT: 110 * sim.Millisecond, MinRTT: 100 * sim.Millisecond})
				case 3:
					srv.ReportProgress(p, Report{Bytes: 10_000, AvgRTT: 120 * sim.Millisecond, MinRTT: 100 * sim.Millisecond})
				case 4:
					// Read-side surface, all safe to call while serving.
					srv.Stats()
					srv.ActiveSenders(p)
					srv.PathCount()
					srv.ExportState()
				}
			}
		}(w)
	}
	wg.Wait()

	lookups, reports := srv.Stats()
	wantLookups := uint64(workers * ops / 5)
	wantReports := uint64(3 * workers * ops / 5)
	if lookups != wantLookups || reports != wantReports {
		t.Errorf("stats = (%d, %d), want (%d, %d)", lookups, reports, wantLookups, wantReports)
	}
	if got := srv.PathCount(); got != paths {
		t.Errorf("PathCount = %d, want %d", got, paths)
	}
}

func pathN(i int) PathKey { return PathKey(fmt.Sprintf("path-%02d", i)) }
