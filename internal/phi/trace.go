package phi

import "repro/internal/trace"

// Span names for the context server's operations.
var (
	opLookup         = trace.Name("phi.lookup")
	opReportStart    = trace.Name("phi.report_start")
	opReportEnd      = trace.Name("phi.report_end")
	opReportProgress = trace.Name("phi.report_progress")
)

// SetTracer attaches (or detaches, with nil) the span tracer. Call
// before the server starts serving.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer = t }

// LookupSpan is Lookup recorded as a child span of sc — the innermost
// hop of a traced request: client, frontend routing, shard call, then
// this, the actual estimator read.
func (s *Server) LookupSpan(sc trace.SpanContext, path PathKey) (Context, error) {
	sp := s.tracer.Start(sc, opLookup)
	ctx, err := s.Lookup(path)
	sp.End(err)
	return ctx, err
}

// ReportStartSpan is ReportStart recorded as a child span of sc.
func (s *Server) ReportStartSpan(sc trace.SpanContext, path PathKey) error {
	sp := s.tracer.Start(sc, opReportStart)
	err := s.ReportStart(path)
	sp.End(err)
	return err
}

// ReportEndSpan is ReportEnd recorded as a child span of sc.
func (s *Server) ReportEndSpan(sc trace.SpanContext, path PathKey, r Report) error {
	sp := s.tracer.Start(sc, opReportEnd)
	err := s.ReportEnd(path, r)
	sp.End(err)
	return err
}

// ReportProgressSpan is ReportProgress recorded as a child span of sc.
func (s *Server) ReportProgressSpan(sc trace.SpanContext, path PathKey, r Report) error {
	sp := s.tracer.Start(sc, opReportProgress)
	err := s.ReportProgress(path, r)
	sp.End(err)
	return err
}
