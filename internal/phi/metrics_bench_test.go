package phi

// Benchmarks isolating the telemetry overhead on the context server's
// hot path: the same lookup/report cycle with and without a metric set
// attached. The delta is dominated by the two monotonic clock reads;
// the histogram record itself is ~20ns (see internal/telemetry).

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func benchServer(instrument bool) *Server {
	var now sim.Time
	s := NewServer(func() sim.Time { now += sim.Millisecond; return now }, ServerConfig{})
	if instrument {
		s.SetMetrics(NewServerMetrics(telemetry.NewRegistry(), nil))
	}
	return s
}

func benchLookup(b *testing.B, instrument bool) {
	s := benchServer(instrument)
	s.RegisterPath("p", 1e9)
	if err := s.ReportStart("p"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup("p"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerLookup(b *testing.B)             { benchLookup(b, false) }
func BenchmarkServerLookupInstrumented(b *testing.B) { benchLookup(b, true) }

func benchReportCycle(b *testing.B, instrument bool) {
	s := benchServer(instrument)
	s.RegisterPath("p", 1e9)
	r := Report{Bytes: 1 << 16, Duration: 100 * sim.Millisecond, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReportStart("p"); err != nil {
			b.Fatal(err)
		}
		if err := s.ReportEnd("p", r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerReportCycle(b *testing.B)             { benchReportCycle(b, false) }
func BenchmarkServerReportCycleInstrumented(b *testing.B) { benchReportCycle(b, true) }
