package phi

import "repro/internal/sim"

// Snapshot support: a Server's per-path state can be exported as plain
// serializable values and later imported into a fresh Server, so a
// restarted context server does not zero out its u/q/n estimates. The
// types mirror pathState field-for-field; times are sim.Time (int64
// nanoseconds), which marshal naturally to JSON and binary codecs.
//
// Package cluster layers a versioned on-disk format and a periodic
// snapshotter on top of these primitives.

// ReportSample is one timed byte report inside a PathSnapshot.
type ReportSample struct {
	At    sim.Time `json:"at"`
	Bytes int64    `json:"bytes"`
}

// PathSnapshot is the exported state of one path.
type PathSnapshot struct {
	Path        PathKey        `json:"path"`
	CapacityBps int64          `json:"capacity_bps,omitempty"`
	Starts      []sim.Time     `json:"starts,omitempty"`
	Reports     []ReportSample `json:"reports,omitempty"`
	MinRTT      sim.Time       `json:"min_rtt,omitempty"`
	QEWMA       sim.Time       `json:"q_ewma,omitempty"`
	QInit       bool           `json:"q_init,omitempty"`
	MaxRateBps  float64        `json:"max_rate_bps,omitempty"`
	LossEWMA    float64        `json:"loss_ewma,omitempty"`
	LossInit    bool           `json:"loss_init,omitempty"`
	// LastActive / LastPassive carry the per-source freshness metadata
	// across restore, so a restarted or promoted replica still knows how
	// old each path's evidence is (the quality layer depends on it).
	LastActive  sim.Time `json:"last_active,omitempty"`
	LastPassive sim.Time `json:"last_passive,omitempty"`
}

// ExportState snapshots every path's state. The result is detached from
// the server: mutating it does not affect live state.
func (s *Server) ExportState() []PathSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PathSnapshot, 0, len(s.paths))
	for path, st := range s.paths {
		ps := PathSnapshot{
			Path:        path,
			CapacityBps: st.capacityBps,
			MinRTT:      st.minRTT,
			QEWMA:       st.qEWMA,
			QInit:       st.qInit,
			MaxRateBps:  st.maxRateBps,
			LossEWMA:    st.lossEWMA,
			LossInit:    st.lossInit,
			LastActive:  st.lastActive,
			LastPassive: st.lastPassive,
		}
		ps.Starts = append(ps.Starts, st.starts...)
		for _, r := range st.reports {
			ps.Reports = append(ps.Reports, ReportSample{At: r.at, Bytes: r.bytes})
		}
		out = append(out, ps)
	}
	return out
}

// ImportState replaces the server's path state with the snapshot. Stale
// entries are not filtered here; the normal window/TTL pruning retires
// them on the next operation against each path.
func (s *Server) ImportState(paths []PathSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	s.paths = make(map[PathKey]*pathState, len(paths))
	for _, ps := range paths {
		st := &pathState{
			capacityBps: ps.CapacityBps,
			minRTT:      ps.MinRTT,
			qEWMA:       ps.QEWMA,
			qInit:       ps.QInit,
			maxRateBps:  ps.MaxRateBps,
			lossEWMA:    ps.LossEWMA,
			lossInit:    ps.LossInit,
			lastActive:  ps.LastActive,
			lastPassive: ps.LastPassive,
			// Freshly restored paths start their idle clock now; the
			// eviction policy judges them by activity from here on.
			touched: now,
		}
		st.starts = append(st.starts, ps.Starts...)
		for _, r := range ps.Reports {
			st.reports = append(st.reports, timedReport{at: r.At, bytes: r.Bytes})
		}
		s.paths[ps.Path] = st
	}
	if m := s.metrics; m != nil {
		m.Paths.Set(float64(len(s.paths)))
	}
}
