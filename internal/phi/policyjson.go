package phi

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// Policy serialization: the distilled parameter policy is the artifact an
// operator ships to its sender fleet (the context server holds the state;
// the policy holds the mapping). The JSON form is stable and human
// editable:
//
//	{
//	  "rules": [
//	    {"max_utilization": 0.3,
//	     "params": {"initial_window": 64, "initial_ssthresh": 16, "beta": 0.2}},
//	    {"params": {"initial_window": 2, "initial_ssthresh": 16, "beta": 0.8}}
//	  ],
//	  "default": {"initial_window": 2, "initial_ssthresh": 65536, "beta": 0.2}
//	}
//
// A rule without max_utilization (or with it null) matches any
// utilization; max_senders and max_queue_ms are optional the same way.

type paramsJSON struct {
	InitialWindow   int     `json:"initial_window"`
	InitialSsthresh int     `json:"initial_ssthresh"`
	Beta            float64 `json:"beta"`
}

type ruleJSON struct {
	MaxUtilization *float64   `json:"max_utilization,omitempty"`
	MaxSenders     int        `json:"max_senders,omitempty"`
	MaxQueueMs     float64    `json:"max_queue_ms,omitempty"`
	Params         paramsJSON `json:"params"`
}

type policyJSON struct {
	Rules   []ruleJSON `json:"rules"`
	Default paramsJSON `json:"default"`
}

func toParamsJSON(p tcp.CubicParams) paramsJSON {
	return paramsJSON{InitialWindow: p.InitialWindow, InitialSsthresh: p.InitialSsthresh, Beta: p.Beta}
}

func fromParamsJSON(p paramsJSON) tcp.CubicParams {
	return tcp.CubicParams{InitialWindow: p.InitialWindow, InitialSsthresh: p.InitialSsthresh, Beta: p.Beta}
}

// MarshalJSON implements json.Marshaler.
func (p *Policy) MarshalJSON() ([]byte, error) {
	out := policyJSON{Default: toParamsJSON(p.Default)}
	for _, r := range p.Rules {
		rj := ruleJSON{
			MaxSenders: r.MaxN,
			MaxQueueMs: r.MaxQ.Milliseconds(),
			Params:     toParamsJSON(r.Params),
		}
		if r.MaxU > 0 && !math.IsInf(r.MaxU, 1) {
			u := r.MaxU
			rj.MaxUtilization = &u
		}
		out.Rules = append(out.Rules, rj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with validation: every rule's
// parameters must be valid.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var in policyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	out := Policy{Default: fromParamsJSON(in.Default)}
	if !out.Default.Valid() {
		return fmt.Errorf("phi: invalid default params %v", out.Default)
	}
	for i, rj := range in.Rules {
		r := Rule{
			MaxN:   rj.MaxSenders,
			MaxQ:   sim.Milliseconds(rj.MaxQueueMs),
			Params: fromParamsJSON(rj.Params),
		}
		if rj.MaxUtilization != nil {
			r.MaxU = *rj.MaxUtilization
		}
		if !r.Params.Valid() {
			return fmt.Errorf("phi: rule %d has invalid params %v", i, r.Params)
		}
		out.Rules = append(out.Rules, r)
	}
	*p = out
	return nil
}

// WriteTo serializes the policy as indented JSON.
func (p *Policy) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// LoadPolicy parses a policy from JSON.
func LoadPolicy(r io.Reader) (*Policy, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
