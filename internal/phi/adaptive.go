package phi

import (
	"repro/internal/sim"
	"repro/internal/tcp"
)

// AdaptiveCubic is the within-connection variant of Section 2.2.2:
// "if the connections are long, we could communicate with the context
// server multiple times within the same connection." It wraps CUBIC and
// re-queries the congestion context on a period, re-tuning the back-off
// factor beta mid-flight — the one knob that matters for long-running
// connections (Figure 2c). The launch parameters (initial window,
// ssthresh) are fixed at connection start as usual.
type AdaptiveCubic struct {
	inner *tcp.Cubic

	source  ContextSource
	policy  *Policy
	path    PathKey
	refresh sim.Time

	lastRefresh sim.Time
	// Refreshes counts context re-queries; BetaChanges counts the ones
	// that actually moved beta.
	Refreshes   int
	BetaChanges int
}

// NewAdaptiveCubic creates the controller. Launch parameters come from an
// immediate lookup (falling back to the policy default); refresh <= 0
// selects 5 s.
func NewAdaptiveCubic(source ContextSource, policy *Policy, path PathKey, refresh sim.Time) *AdaptiveCubic {
	if policy == nil {
		policy = DefaultPolicy()
	}
	if refresh <= 0 {
		refresh = 5 * sim.Second
	}
	params := policy.Default
	if source != nil {
		if ctx, err := source.Lookup(path); err == nil {
			params = policy.Params(ctx)
		}
	}
	if !params.Valid() {
		params = tcp.DefaultCubicParams()
	}
	return &AdaptiveCubic{
		inner: tcp.NewCubic(params), source: source, policy: policy,
		path: path, refresh: refresh,
	}
}

// Name implements tcp.CongestionControl.
func (a *AdaptiveCubic) Name() string { return "cubic-phi-adaptive" }

// Init implements tcp.CongestionControl.
func (a *AdaptiveCubic) Init(now sim.Time) {
	a.inner.Init(now)
	a.lastRefresh = now
}

// OnAck implements tcp.CongestionControl, refreshing the shared context
// on the configured period.
func (a *AdaptiveCubic) OnAck(info tcp.AckInfo) {
	if a.source != nil && info.Now-a.lastRefresh >= a.refresh {
		a.lastRefresh = info.Now
		if ctx, err := a.source.Lookup(a.path); err == nil {
			a.Refreshes++
			params := a.policy.Params(ctx)
			if params.Valid() && params.Beta != a.inner.Params.Beta {
				a.inner.Params.Beta = params.Beta
				a.BetaChanges++
			}
		}
	}
	a.inner.OnAck(info)
}

// OnLoss implements tcp.CongestionControl.
func (a *AdaptiveCubic) OnLoss(now sim.Time) { a.inner.OnLoss(now) }

// OnTimeout implements tcp.CongestionControl.
func (a *AdaptiveCubic) OnTimeout(now sim.Time) { a.inner.OnTimeout(now) }

// Window implements tcp.CongestionControl.
func (a *AdaptiveCubic) Window() float64 { return a.inner.Window() }

// Ssthresh implements tcp.CongestionControl.
func (a *AdaptiveCubic) Ssthresh() float64 { return a.inner.Ssthresh() }

// PacingInterval implements tcp.CongestionControl.
func (a *AdaptiveCubic) PacingInterval() sim.Time { return 0 }

// Beta exposes the current back-off factor (for tests and telemetry).
func (a *AdaptiveCubic) Beta() float64 { return a.inner.Params.Beta }

var _ tcp.CongestionControl = (*AdaptiveCubic)(nil)
