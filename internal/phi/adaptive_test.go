package phi

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// swingSource returns contexts controlled by the test.
type swingSource struct{ ctx Context }

func (s *swingSource) Lookup(PathKey) (Context, error) { return s.ctx, nil }

func TestAdaptiveCubicRefreshesBeta(t *testing.T) {
	src := &swingSource{ctx: Context{U: 0.1}} // idle at launch
	cc := NewAdaptiveCubic(src, DefaultPolicy(), "p", sim.Second)
	cc.Init(0)
	idleBeta := cc.Beta()
	if idleBeta != DefaultPolicy().Params(Context{U: 0.1}).Beta {
		t.Fatalf("launch beta = %v", idleBeta)
	}

	// Load rises mid-connection; the next refresh re-tunes beta.
	src.ctx = Context{U: 0.99}
	cc.OnAck(tcp.AckInfo{Now: 500 * sim.Millisecond, AckedSegments: 1}) // before refresh period
	if cc.Refreshes != 0 {
		t.Fatal("refreshed before the period elapsed")
	}
	cc.OnAck(tcp.AckInfo{Now: 1100 * sim.Millisecond, AckedSegments: 1})
	if cc.Refreshes != 1 || cc.BetaChanges != 1 {
		t.Fatalf("refreshes=%d betaChanges=%d", cc.Refreshes, cc.BetaChanges)
	}
	loadedBeta := cc.Beta()
	if loadedBeta <= idleBeta {
		t.Errorf("beta did not sharpen under load: %v -> %v", idleBeta, loadedBeta)
	}

	// Back to idle: beta relaxes on a later refresh.
	src.ctx = Context{U: 0.1}
	cc.OnAck(tcp.AckInfo{Now: 2200 * sim.Millisecond, AckedSegments: 1})
	if cc.Beta() != idleBeta {
		t.Errorf("beta did not relax: %v", cc.Beta())
	}
}

func TestAdaptiveCubicLaunchFromLookup(t *testing.T) {
	src := &swingSource{ctx: Context{U: 0.99}}
	cc := NewAdaptiveCubic(src, DefaultPolicy(), "p", 0)
	cc.Init(0)
	// Saturated launch: tiny initial window from the policy's last band.
	if cc.Window() != 2 {
		t.Errorf("saturated launch window = %v, want 2", cc.Window())
	}
	if cc.Name() != "cubic-phi-adaptive" {
		t.Errorf("name = %s", cc.Name())
	}
	// No source: defaults, no refreshes, still functional.
	blind := NewAdaptiveCubic(nil, nil, "p", sim.Second)
	blind.Init(0)
	blind.OnAck(tcp.AckInfo{Now: 10 * sim.Second, AckedSegments: 1})
	if blind.Refreshes != 0 {
		t.Error("sourceless controller refreshed")
	}
	blind.OnLoss(11 * sim.Second)
	blind.OnTimeout(12 * sim.Second)
	if blind.Window() < 1 || blind.Ssthresh() <= 0 || blind.PacingInterval() != 0 {
		t.Error("delegation broken")
	}
}

// TestAdaptiveCubicLongFlowInSimulator runs the full loop: a long-running
// Phi flow with periodic context refresh over a bottleneck whose load
// changes mid-flight.
func TestAdaptiveCubicLongFlowInSimulator(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(2))
	probe := sim.NewRateProbe(eng, d.Bottleneck.Monitor(), 100*sim.Millisecond, sim.Second)
	oracle := Oracle{Fn: func() Context { return Context{U: probe.Utilization()} }}

	cc := NewAdaptiveCubic(oracle, DefaultPolicy(), "bn", 2*sim.Second)
	long, _ := tcp.Connect(eng, 1, d.Senders[0], d.Receivers[0], 0, cc, tcp.Config{})
	long.Start()

	// Cross load arrives at t=20s.
	eng.At(20*sim.Second, func() {
		cross, _ := tcp.Connect(eng, 2, d.Senders[1], d.Receivers[1], 0,
			tcp.NewCubic(tcp.DefaultCubicParams()), tcp.Config{})
		cross.Start()
	})
	eng.RunUntil(60 * sim.Second)

	if cc.Refreshes < 10 {
		t.Errorf("refreshes = %d, want many over 60s at 2s period", cc.Refreshes)
	}
	if cc.BetaChanges == 0 {
		t.Error("beta never adapted despite the load change")
	}
	if long.Stats().BytesAcked == 0 {
		t.Error("long flow moved no data")
	}
}
