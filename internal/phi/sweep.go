package phi

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// SweepSpec is the Cubic parameter grid of Table 2.
type SweepSpec struct {
	// Ssthresh values in segments (paper: 2..256, doubling).
	Ssthresh []int
	// WindowInit values in segments (paper: 2..256, doubling).
	WindowInit []int
	// Beta values (paper: 0.1..0.9 step 0.1).
	Beta []float64
}

// Table2Spec returns the paper's full sweep grid (Table 2): 8 x 8 x 9 =
// 576 parameter combinations.
func Table2Spec() SweepSpec {
	var pow2 []int
	for v := 2; v <= 256; v *= 2 {
		pow2 = append(pow2, v)
	}
	var betas []float64
	for b := 0.1; b < 0.95; b += 0.1 {
		betas = append(betas, math.Round(b*10)/10)
	}
	return SweepSpec{Ssthresh: pow2, WindowInit: append([]int(nil), pow2...), Beta: betas}
}

// CoarseSpec returns a reduced grid for quick runs and benchmarks; the
// full Table2Spec remains available behind a flag in cmd/phi-experiments.
func CoarseSpec() SweepSpec {
	return SweepSpec{
		Ssthresh:   []int{16, 64, 256},
		WindowInit: []int{2, 16, 64},
		Beta:       []float64{0.2, 0.5, 0.8},
	}
}

// BetaOnlySpec sweeps only beta (Figure 2c: for long-running flows only
// beta matters), holding the other parameters at their defaults.
func BetaOnlySpec() SweepSpec {
	var betas []float64
	for b := 0.1; b < 0.95; b += 0.1 {
		betas = append(betas, math.Round(b*10)/10)
	}
	return SweepSpec{Ssthresh: []int{65536}, WindowInit: []int{2}, Beta: betas}
}

// Points expands the grid into concrete parameter combinations.
func (s SweepSpec) Points() []tcp.CubicParams {
	var out []tcp.CubicParams
	for _, ss := range s.Ssthresh {
		for _, iw := range s.WindowInit {
			for _, b := range s.Beta {
				out = append(out, tcp.CubicParams{InitialWindow: iw, InitialSsthresh: ss, Beta: b})
			}
		}
	}
	return out
}

// RunMetrics are the measurements of one run at one parameter setting.
type RunMetrics struct {
	ThroughputMbps float64
	QueueDelayMs   float64
	LossRate       float64
	Utilization    float64
	// Power is the paper's objective P_l = r(1-l)/d for this run.
	Power float64
}

// SweepPoint is one parameter setting with its per-run measurements.
type SweepPoint struct {
	Params tcp.CubicParams
	Runs   []RunMetrics
}

// MeanPower averages the objective across runs.
func (p *SweepPoint) MeanPower() float64 {
	var xs []float64
	for _, r := range p.Runs {
		xs = append(xs, r.Power)
	}
	return metrics.Mean(xs)
}

// MeanThroughputMbps averages throughput across runs.
func (p *SweepPoint) MeanThroughputMbps() float64 {
	var xs []float64
	for _, r := range p.Runs {
		xs = append(xs, r.ThroughputMbps)
	}
	return metrics.Mean(xs)
}

// MeanQueueDelayMs averages queueing delay across runs.
func (p *SweepPoint) MeanQueueDelayMs() float64 {
	var xs []float64
	for _, r := range p.Runs {
		xs = append(xs, r.QueueDelayMs)
	}
	return metrics.Mean(xs)
}

// MeanLossRate averages loss across runs.
func (p *SweepPoint) MeanLossRate() float64 {
	var xs []float64
	for _, r := range p.Runs {
		xs = append(xs, r.LossRate)
	}
	return metrics.Mean(xs)
}

// SweepConfig drives a parameter sweep over a workload scenario.
type SweepConfig struct {
	// Scenario is the workload template; its CC field is overridden per
	// parameter point (every sender uses the same setting, as in the
	// paper's simplified coordinated setting, Section 2.2.1).
	Scenario workload.Scenario
	// Spec is the parameter grid.
	Spec SweepSpec
	// Runs is the number of repetitions per point (paper: n = 8).
	Runs int
	// BaseSeed seeds run i with BaseSeed + i, identical across points so
	// leave-one-out comparisons are paired.
	BaseSeed int64
	// Parallelism runs sweep points concurrently (each simulation is
	// independent and deterministically seeded, so results are identical
	// to a serial sweep). 0 uses GOMAXPROCS; 1 forces serial.
	Parallelism int
	// OnStart, if set, is called once before any point runs, with the
	// number of points the sweep will execute (grid plus the default
	// reference point). Progress instrumentation hangs off this pair.
	OnStart func(points int)
	// OnPoint, if set, is called as each point completes, with its
	// parameters and wall-clock duration. Called from worker goroutines:
	// implementations must be safe for concurrent use. Neither hook
	// affects results or their ordering.
	OnPoint func(params tcp.CubicParams, wall time.Duration)
}

// SweepResult holds the full sweep plus the default-parameter reference.
type SweepResult struct {
	Points  []SweepPoint
	Default SweepPoint
}

// RunSweep executes the sweep, spreading parameter points across CPUs.
// It is deterministic in BaseSeed regardless of parallelism.
func RunSweep(cfg SweepConfig) *SweepResult {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	points := cfg.Spec.Points()
	res := &SweepResult{Points: make([]SweepPoint, len(points))}
	if cfg.OnStart != nil {
		cfg.OnStart(len(points) + 1)
	}

	type job struct{ idx int } // idx -1 is the default point
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				params := tcp.DefaultCubicParams()
				if j.idx >= 0 {
					params = points[j.idx]
				}
				begin := time.Now()
				pt := runPoint(cfg, params)
				if j.idx < 0 {
					res.Default = pt
				} else {
					res.Points[j.idx] = pt
				}
				if cfg.OnPoint != nil {
					cfg.OnPoint(params, time.Since(begin))
				}
			}
		}()
	}
	jobs <- job{idx: -1}
	for i := range points {
		jobs <- job{idx: i}
	}
	close(jobs)
	wg.Wait()
	return res
}

func runPoint(cfg SweepConfig, params tcp.CubicParams) SweepPoint {
	pt := SweepPoint{Params: params}
	for i := 0; i < cfg.Runs; i++ {
		sc := cfg.Scenario
		sc.Seed = cfg.BaseSeed + int64(i)
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(params) }
		}
		r := workload.Run(sc)
		pt.Runs = append(pt.Runs, metricsOf(&r))
	}
	return pt
}

func metricsOf(r *workload.Result) RunMetrics {
	return RunMetrics{
		ThroughputMbps: r.AggThroughputMbps(),
		QueueDelayMs:   r.MeanQueueingDelayMs(),
		LossRate:       r.LinkLossRate,
		Utilization:    r.Utilization,
		Power:          r.LossPower(),
	}
}

// Best returns the point with the highest mean objective.
func (r *SweepResult) Best() *SweepPoint {
	if len(r.Points) == 0 {
		return nil
	}
	best := &r.Points[0]
	for i := range r.Points {
		if r.Points[i].MeanPower() > best.MeanPower() {
			best = &r.Points[i]
		}
	}
	return best
}

// LeaveOneOut performs the Figure 3 stability analysis: for each run i,
// take the parameter point that was optimal on run i alone and evaluate
// its mean objective over the remaining runs. Returned per-i, along with
// the per-run optimal and default objectives for comparison.
type LeaveOneOut struct {
	// Run i's best-on-i params evaluated on the other runs.
	CommonPower []float64
	// The per-run optimal objective (upper envelope).
	OptimalPower []float64
	// The default parameters' objective per run.
	DefaultPower []float64
}

// LeaveOneOut computes the stability analysis from an executed sweep.
func (r *SweepResult) LeaveOneOut() LeaveOneOut {
	if len(r.Points) == 0 || len(r.Points[0].Runs) < 2 {
		return LeaveOneOut{}
	}
	runs := len(r.Points[0].Runs)
	out := LeaveOneOut{}
	for i := 0; i < runs; i++ {
		// Best point judged by run i only.
		bestIdx, bestPow := 0, math.Inf(-1)
		for pi := range r.Points {
			if p := r.Points[pi].Runs[i].Power; p > bestPow {
				bestPow, bestIdx = p, pi
			}
		}
		out.OptimalPower = append(out.OptimalPower, bestPow)
		// Its mean power on the other runs.
		var rest []float64
		for j := 0; j < runs; j++ {
			if j != i {
				rest = append(rest, r.Points[bestIdx].Runs[j].Power)
			}
		}
		out.CommonPower = append(out.CommonPower, metrics.Mean(rest))
		out.DefaultPower = append(out.DefaultPower, r.Default.Runs[i].Power)
	}
	return out
}

// RuleFromSweep distills a sweep taken at a known utilization level into a
// policy rule (utilization-banded).
func RuleFromSweep(maxU float64, r *SweepResult) Rule {
	best := r.Best()
	if best == nil {
		return Rule{MaxU: maxU, Params: tcp.DefaultCubicParams()}
	}
	return Rule{MaxU: maxU, Params: best.Params}
}

// PolicyFromSweeps assembles a policy from per-utilization-band sweeps.
// bands maps the band's inclusive upper utilization bound to its sweep.
func PolicyFromSweeps(bands map[float64]*SweepResult) *Policy {
	pol := &Policy{Default: tcp.DefaultCubicParams()}
	var keys []float64
	for u := range bands {
		keys = append(keys, u)
	}
	sort.Float64s(keys)
	for _, u := range keys {
		pol.Rules = append(pol.Rules, RuleFromSweep(u, bands[u]))
	}
	return pol
}

// String summarizes a sweep point as one row.
func (p *SweepPoint) String() string {
	return fmt.Sprintf("%-28v thr=%6.2f Mbps qdelay=%7.2f ms loss=%6.3f%% power=%6.2f",
		p.Params, p.MeanThroughputMbps(), p.MeanQueueDelayMs(), 100*p.MeanLossRate(), p.MeanPower())
}
