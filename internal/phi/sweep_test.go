package phi

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// quickScenario is a small, fast workload for sweep machinery tests.
func quickScenario(senders int) workload.Scenario {
	return workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(senders),
		MeanOnBytes: 200_000,
		MeanOffTime: sim.Second,
		Duration:    20 * sim.Second,
		Warmup:      2 * sim.Second,
	}
}

func TestRunSweepShapes(t *testing.T) {
	spec := SweepSpec{Ssthresh: []int{64}, WindowInit: []int{2, 16}, Beta: []float64{0.2}}
	res := RunSweep(SweepConfig{Scenario: quickScenario(4), Spec: spec, Runs: 2, BaseSeed: 1})
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if len(p.Runs) != 2 {
			t.Fatalf("point has %d runs, want 2", len(p.Runs))
		}
		if p.MeanThroughputMbps() <= 0 {
			t.Errorf("point %v has zero throughput", p.Params)
		}
		if p.String() == "" {
			t.Error("empty point string")
		}
	}
	if len(res.Default.Runs) != 2 {
		t.Error("default point not run")
	}
	if res.Best() == nil {
		t.Fatal("no best point")
	}
}

func TestSweepIsDeterministic(t *testing.T) {
	spec := SweepSpec{Ssthresh: []int{64}, WindowInit: []int{8}, Beta: []float64{0.2}}
	cfg := SweepConfig{Scenario: quickScenario(3), Spec: spec, Runs: 2, BaseSeed: 7}
	a := RunSweep(cfg)
	b := RunSweep(cfg)
	for i := range a.Points {
		for j := range a.Points[i].Runs {
			if a.Points[i].Runs[j] != b.Points[i].Runs[j] {
				t.Fatalf("sweep not deterministic at point %d run %d", i, j)
			}
		}
	}
}

func TestTunedBeatsDefaultAtModerateLoad(t *testing.T) {
	// The paper's core claim (Figure 2): a bounded initial ssthresh with a
	// larger initial window beats the 65536-segment default on the power
	// metric. Use a moderate-load scenario and a small grid around the
	// known-good region.
	spec := SweepSpec{Ssthresh: []int{32, 64}, WindowInit: []int{8, 16}, Beta: []float64{0.2}}
	res := RunSweep(SweepConfig{
		Scenario: quickScenario(8),
		Spec:     spec,
		Runs:     3,
		BaseSeed: 11,
	})
	best := res.Best()
	if best.MeanPower() <= res.Default.MeanPower() {
		t.Errorf("tuned power %.2f not better than default %.2f",
			best.MeanPower(), res.Default.MeanPower())
	}
	if best.MeanLossRate() > res.Default.MeanLossRate() {
		t.Errorf("tuned loss %.4f should not exceed default loss %.4f",
			best.MeanLossRate(), res.Default.MeanLossRate())
	}
}

func TestLeaveOneOutStability(t *testing.T) {
	spec := SweepSpec{Ssthresh: []int{32, 64}, WindowInit: []int{8}, Beta: []float64{0.2}}
	res := RunSweep(SweepConfig{Scenario: quickScenario(6), Spec: spec, Runs: 4, BaseSeed: 3})
	loo := res.LeaveOneOut()
	if len(loo.CommonPower) != 4 || len(loo.OptimalPower) != 4 || len(loo.DefaultPower) != 4 {
		t.Fatalf("LOO sizes wrong: %d/%d/%d", len(loo.CommonPower), len(loo.OptimalPower), len(loo.DefaultPower))
	}
	for i := range loo.OptimalPower {
		if loo.OptimalPower[i] <= 0 {
			t.Errorf("optimal power run %d = %v", i, loo.OptimalPower[i])
		}
	}
	// Degenerate cases.
	empty := &SweepResult{}
	if loo := empty.LeaveOneOut(); len(loo.CommonPower) != 0 {
		t.Error("empty sweep should yield empty LOO")
	}
}

func TestPolicyFromSweeps(t *testing.T) {
	spec := SweepSpec{Ssthresh: []int{64}, WindowInit: []int{8}, Beta: []float64{0.2}}
	res := RunSweep(SweepConfig{Scenario: quickScenario(2), Spec: spec, Runs: 1, BaseSeed: 1})
	pol := PolicyFromSweeps(map[float64]*SweepResult{0.3: res, 0.9: res})
	if len(pol.Rules) != 2 {
		t.Fatalf("%d rules, want 2", len(pol.Rules))
	}
	if pol.Rules[0].MaxU != 0.3 || pol.Rules[1].MaxU != 0.9 {
		t.Errorf("rules not sorted by utilization: %v", pol.Rules)
	}
	if !pol.Rules[0].Params.Valid() {
		t.Error("rule params invalid")
	}
	// Empty sweep falls back to defaults.
	r := RuleFromSweep(0.5, &SweepResult{})
	if r.Params != tcp.DefaultCubicParams() {
		t.Error("empty sweep rule should carry defaults")
	}
}

func TestRunMixedSeparatesGroups(t *testing.T) {
	res := RunMixed(MixedConfig{
		Scenario:         quickScenario(6),
		Modified:         tcp.CubicParams{InitialWindow: 16, InitialSsthresh: 64, Beta: 0.2},
		ModifiedFraction: 0.5,
		Runs:             2,
		BaseSeed:         5,
	})
	if len(res.Modified.Runs) != 2 || len(res.Unmodified.Runs) != 2 {
		t.Fatalf("run counts: %d/%d", len(res.Modified.Runs), len(res.Unmodified.Runs))
	}
	if res.Modified.MeanThroughputMbps() <= 0 || res.Unmodified.MeanThroughputMbps() <= 0 {
		t.Error("a group moved no data")
	}
	if res.Modified.MeanPower() <= 0 || res.Unmodified.MeanPower() <= 0 {
		t.Error("group power should be positive")
	}
	if res.Modified.MeanLossRate() < 0 || res.Unmodified.MeanLossRate() < 0 {
		t.Error("negative loss rate")
	}
}

func TestPhiClientEndToEndInSimulator(t *testing.T) {
	// Integration: run a scenario where every connection consults a
	// context server fed by connection-boundary reports — the full
	// practical Phi loop from Section 2.2.2.
	var srv *Server
	var client *Client
	sc := quickScenario(6)
	sc.Duration = 30 * sim.Second

	// The server's clock must read the engine of the running scenario, so
	// wire it lazily through a pointer the scenario hooks update.
	var now sim.Time
	srv = NewServer(func() sim.Time { return now }, ServerConfig{})
	srv.RegisterPath("bottleneck", sc.Dumbbell.BottleneckRate)
	client = &Client{Source: srv, Reporter: srv, Policy: DefaultPolicy(), Path: "bottleneck"}

	sc.CC = func(int) func() tcp.CongestionControl { return client.CC() }
	sc.OnStart = func(sender int, flow sim.FlowID) { client.OnStart(flow) }
	sc.OnEnd = func(sender int, st *tcp.FlowStats) {
		now = st.End // advance the server clock with flow completions
		client.OnEnd(st)
	}
	r := workload.Run(sc)
	if len(r.Flows) == 0 {
		t.Fatal("no flows")
	}
	if lookups, reports := srv.Stats(); lookups == 0 || reports == 0 {
		t.Errorf("server not exercised: lookups=%d reports=%d", lookups, reports)
	}
	if client.Fallbacks != 0 {
		t.Errorf("unexpected fallbacks: %d", client.Fallbacks)
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	spec := SweepSpec{Ssthresh: []int{16, 64}, WindowInit: []int{2, 16}, Beta: []float64{0.2, 0.5}}
	base := SweepConfig{Scenario: quickScenario(3), Spec: spec, Runs: 2, BaseSeed: 77}
	serial := base
	serial.Parallelism = 1
	parallel := base
	parallel.Parallelism = 4
	a := RunSweep(serial)
	b := RunSweep(parallel)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ")
	}
	for i := range a.Points {
		if a.Points[i].Params != b.Points[i].Params {
			t.Fatalf("point %d params ordering differs", i)
		}
		for j := range a.Points[i].Runs {
			if a.Points[i].Runs[j] != b.Points[i].Runs[j] {
				t.Fatalf("point %d run %d differs between serial and parallel", i, j)
			}
		}
	}
	for j := range a.Default.Runs {
		if a.Default.Runs[j] != b.Default.Runs[j] {
			t.Fatal("default point differs")
		}
	}
}

func TestSweepProgressHooks(t *testing.T) {
	spec := SweepSpec{Ssthresh: []int{16, 64}, WindowInit: []int{2}, Beta: []float64{0.2, 0.5}}
	var mu sync.Mutex
	var announced int
	var seen []tcp.CubicParams
	res := RunSweep(SweepConfig{
		Scenario: quickScenario(2), Spec: spec, Runs: 1, BaseSeed: 5,
		Parallelism: 4,
		OnStart:     func(points int) { announced = points },
		OnPoint: func(p tcp.CubicParams, wall time.Duration) {
			if wall < 0 {
				t.Errorf("negative wall time for %v", p)
			}
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		},
	})
	if want := len(spec.Points()) + 1; announced != want {
		t.Errorf("OnStart announced %d points, want %d", announced, want)
	}
	if len(seen) != announced {
		t.Errorf("OnPoint fired %d times, want %d", len(seen), announced)
	}
	defaults := 0
	for _, p := range seen {
		if p == tcp.DefaultCubicParams() {
			defaults++
		}
	}
	if defaults != 1 {
		t.Errorf("default reference point reported %d times, want 1", defaults)
	}
	if len(res.Points) != len(spec.Points()) {
		t.Errorf("hooks changed the result shape: %d points", len(res.Points))
	}
}
