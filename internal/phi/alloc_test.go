package phi

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Allocation regression gates for the state-plane hot path — the
// measured starting line for the ROADMAP's zero-alloc drive. Lookup is
// already allocation-free at steady state; a start/end lifecycle pair
// costs one amortized allocation (slice growth in the per-path report
// window). Ceilings, enforced by the CI alloc-gate step: tighten them
// as the paths improve, never loosen without a recorded reason.
func TestAllocsServerHotPath(t *testing.T) {
	srv := NewServer(func() sim.Time { return sim.Time(time.Now().UnixNano()) }, ServerConfig{})
	srv.RegisterPath("p", 1_000_000)
	report := Report{
		Bytes:    1 << 20,
		Duration: 1200 * sim.Millisecond,
		AvgRTT:   40 * sim.Millisecond,
		MinRTT:   31 * sim.Millisecond,
		LossRate: 0.002,
	}
	// Warm to steady state: path registered, report window populated,
	// slices at their working capacity.
	for i := 0; i < 200; i++ {
		if err := srv.ReportStart("p"); err != nil {
			t.Fatal(err)
		}
		if err := srv.ReportEnd("p", report); err != nil {
			t.Fatal(err)
		}
	}

	if got := testing.AllocsPerRun(1000, func() {
		if _, err := srv.Lookup("p"); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("Lookup = %.1f allocs/op, pinned max 0 — efficiency regression", got)
	}

	if got := testing.AllocsPerRun(1000, func() {
		if err := srv.ReportStart("p"); err != nil {
			t.Fatal(err)
		}
		if err := srv.ReportEnd("p", report); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Errorf("ReportStart+ReportEnd pair = %.1f allocs/op, pinned max 1 — efficiency regression", got)
	} else {
		t.Logf("start+end pair: %.1f allocs/op (pin 1)", got)
	}
}
