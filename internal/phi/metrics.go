package phi

import "repro/internal/telemetry"

// ServerMetrics is the telemetry surface of one context server: op
// counts, op latency, and live path cardinality. All fields are nil-safe
// handles, and a nil *ServerMetrics disables instrumentation entirely —
// the uninstrumented hot path pays one branch.
type ServerMetrics struct {
	// Lookups and Reports count operations (reports include start, end,
	// and progress). PassiveReports counts the subset of end/progress
	// reports tagged phi.SourcePassive (fed by the ingest pipeline).
	Lookups        *telemetry.Counter
	Reports        *telemetry.Counter
	PassiveReports *telemetry.Counter
	// LookupSeconds and ReportSeconds time the in-server critical
	// section of each operation.
	LookupSeconds *telemetry.Histogram
	ReportSeconds *telemetry.Histogram
	// Paths tracks the number of paths with state.
	Paths *telemetry.Gauge
	// EvictedPaths counts idle paths removed by the MaxPaths bound.
	EvictedPaths *telemetry.Counter
}

// NewServerMetrics registers the context-server metric set on reg with
// the given constant labels (e.g. the shard id). A nil registry yields
// nil, so callers can wire unconditionally.
func NewServerMetrics(reg *telemetry.Registry, labels telemetry.Labels) *ServerMetrics {
	if reg == nil {
		return nil
	}
	return &ServerMetrics{
		Lookups:        reg.Counter("phi_server_lookups_total", "context lookups served", labels),
		Reports:        reg.Counter("phi_server_reports_total", "reports folded in (start+end+progress)", labels),
		PassiveReports: reg.Counter("phi_server_passive_reports_total", "reports inferred passively from observed traffic", labels),
		LookupSeconds:  reg.Histogram("phi_server_lookup_seconds", "in-server lookup latency", labels),
		ReportSeconds:  reg.Histogram("phi_server_report_seconds", "in-server report latency", labels),
		Paths:          reg.Gauge("phi_server_paths", "paths with live state", labels),
		EvictedPaths:   reg.Counter("phi_server_evicted_paths_total", "idle paths evicted by the MaxPaths bound", labels),
	}
}

// SetMetrics attaches (or detaches, with nil) the metric set. Call it
// before the server starts serving: the field is read without
// synchronization on the hot path.
func (s *Server) SetMetrics(m *ServerMetrics) {
	s.metrics = m
	if m != nil {
		s.mu.Lock()
		m.Paths.Set(float64(len(s.paths)))
		s.mu.Unlock()
	}
}
