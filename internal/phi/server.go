package phi

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/health"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ServerConfig tunes the context server's estimators.
type ServerConfig struct {
	// Window is the sliding window over which reported bytes are turned
	// into a utilization estimate (default 10 s).
	Window sim.Time
	// QueueAlpha is the EWMA smoothing factor for the queue estimate
	// (default 0.3).
	QueueAlpha float64
	// ActiveTTL expires a registered sender that never reports back (a
	// crashed client must not inflate the n estimate forever). Default
	// 60 s; zero keeps the default, negative disables expiry.
	ActiveTTL sim.Time
	// PassiveWeight scales the influence of passively inferred reports
	// (Report.Source == SourcePassive) relative to cooperative ones: the
	// report's bytes and its queue-estimate contribution are both
	// multiplied by it. 1 treats both sources equally, values below 1
	// discount inference noise, above 1 trust the egress view more than
	// sender self-reports. Default 1; zero keeps the default, negative
	// ignores passive reports entirely (their byte/RTT evidence is
	// dropped; start/end registration still maintains n).
	PassiveWeight float64
	// FreshTTL is the evidence age below which a lookup counts as a
	// fresh hit for the quality layer (older evidence is a stale hit).
	// Default: Window — context computed from evidence still inside the
	// estimation window is fresh by construction. Zero keeps the
	// default; negative treats any evidence as fresh.
	FreshTTL sim.Time
	// MaxPaths bounds the per-path state map. When a new path would
	// push the map past the bound, idle paths (no active senders) are
	// evicted oldest-touched first, in a batch, down to ~90% of the
	// bound. Zero or negative leaves the map unbounded (the historical
	// behavior).
	MaxPaths int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Window == 0 {
		c.Window = 10 * sim.Second
	}
	if c.QueueAlpha == 0 {
		c.QueueAlpha = 0.3
	}
	if c.ActiveTTL == 0 {
		c.ActiveTTL = 60 * sim.Second
	}
	if c.PassiveWeight == 0 {
		c.PassiveWeight = 1
	}
	if c.FreshTTL == 0 {
		c.FreshTTL = c.Window
	}
	return c
}

// Server is the in-process context server: the repository of shared state
// for one administrative domain. It is fed only at connection boundaries
// (the paper's minimal-overhead "practical" design) and is safe for
// concurrent use, so the same instance can back the wire protocol.
//
// Time is injected as a clock function so the server runs both inside the
// simulator (engine.Now) and against the wall clock.
type Server struct {
	mu    sync.Mutex
	clock func() sim.Time
	cfg   ServerConfig
	paths map[PathKey]*pathState

	// lookups and reports count operations; they are atomics so Stats can
	// be read while the server is serving without taking s.mu.
	// passiveReports counts the subset of reports tagged SourcePassive.
	lookups        atomic.Uint64
	reports        atomic.Uint64
	passiveReports atomic.Uint64

	// metrics is the optional telemetry surface (nil = uninstrumented;
	// the hot path then pays exactly one branch). Set before serving.
	metrics *ServerMetrics

	// tracer records per-operation spans (nil = untraced; same one-branch
	// discipline as metrics). Set before serving.
	tracer *trace.Tracer

	// health feeds the live anomaly monitor (nil = unmonitored; its
	// Record methods are nil-safe, so the hot path pays one branch).
	// Set before serving.
	health *health.Monitor

	// quality feeds the context-quality observatory (nil = unmeasured;
	// same one-branch discipline — the tracker's methods are nil-safe
	// too, so this hook costs nothing when quality is off). Set before
	// serving.
	quality *quality.Tracker

	// evicted counts idle paths removed by the MaxPaths bound. Atomic so
	// tests and Stats readers never take s.mu.
	evicted atomic.Uint64
}

// SetHealth attaches (or detaches, with nil) the live health monitor.
// Call before serving.
func (s *Server) SetHealth(m *health.Monitor) { s.health = m }

// SetQuality attaches (or detaches, with nil) the context-quality
// tracker. Call before serving. The tracker is typically shared by
// every server in the process, so quality aggregates across shards.
func (s *Server) SetQuality(q *quality.Tracker) { s.quality = q }

type timedReport struct {
	at    sim.Time
	bytes int64
}

type pathState struct {
	capacityBps int64
	// starts holds the registration times of active senders (FIFO); a
	// ReportEnd retires the oldest, matching the paper's
	// one-start-one-end protocol without per-flow identifiers.
	starts     []sim.Time
	reports    []timedReport
	minRTT     sim.Time
	qEWMA      sim.Time
	qInit      bool
	maxRateBps float64
	// lossEWMA smooths reported loss rates with the same alpha as the
	// queue estimate; it exists for the quality layer's loss-accuracy
	// pairing (the served context itself carries u/q/n only).
	lossEWMA float64
	lossInit bool
	// lastActive / lastPassive are when each source last contributed
	// evidence (weight > 0) — the freshness metadata the quality layer
	// samples at lookup time. Zero means never.
	lastActive  sim.Time
	lastPassive sim.Time
	// touched is the last access of any kind; the MaxPaths eviction
	// removes idle paths oldest-touched first.
	touched sim.Time
}

// NewServer creates a context server reading time from clock.
func NewServer(clock func() sim.Time, cfg ServerConfig) *Server {
	return &Server{clock: clock, cfg: cfg.withDefaults(), paths: make(map[PathKey]*pathState)}
}

// RegisterPath declares a path's bottleneck capacity, enabling calibrated
// utilization estimates. Without it the capacity is learned as the largest
// aggregate rate ever observed.
func (s *Server) RegisterPath(path PathKey, capacityBps int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state(path, s.clock()).capacityBps = capacityBps
}

func (s *Server) state(path PathKey, now sim.Time) *pathState {
	st, ok := s.paths[path]
	if !ok {
		if s.cfg.MaxPaths > 0 && len(s.paths) >= s.cfg.MaxPaths {
			s.evictIdleLocked()
		}
		st = &pathState{}
		s.paths[path] = st
		if m := s.metrics; m != nil {
			m.Paths.Set(float64(len(s.paths)))
		}
	}
	st.touched = now
	return st
}

// evictIdleLocked removes idle paths (no registered active senders),
// oldest-touched first, until the map is at ~90% of MaxPaths — batched
// so the scan cost amortizes over many inserts instead of paying O(n)
// per new path at the bound. Paths with active senders are never
// evicted: their n estimate is live state a sender paid a report for.
// Caller holds s.mu.
func (s *Server) evictIdleLocked() {
	target := s.cfg.MaxPaths * 9 / 10
	if target < 1 {
		target = 1
	}
	excess := len(s.paths) - target + 1 // +1: make room for the insert
	if excess <= 0 {
		return
	}
	type cand struct {
		key     PathKey
		touched sim.Time
	}
	cands := make([]cand, 0, len(s.paths))
	for k, st := range s.paths {
		if len(st.starts) > 0 {
			continue
		}
		cands = append(cands, cand{k, st.touched})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].touched < cands[j].touched })
	if excess > len(cands) {
		excess = len(cands)
	}
	q := s.quality
	for _, c := range cands[:excess] {
		delete(s.paths, c.key)
		q.ForgetPath(string(c.key))
	}
	s.evicted.Add(uint64(excess))
	if m := s.metrics; m != nil {
		m.EvictedPaths.Add(uint64(excess))
		m.Paths.Set(float64(len(s.paths)))
	}
}

// EvictedPaths returns how many idle paths the MaxPaths bound has
// removed. Safe to call while serving.
func (s *Server) EvictedPaths() uint64 { return s.evicted.Load() }

// Lookup implements ContextSource. It never fails in-process.
func (s *Server) Lookup(path PathKey) (Context, error) {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	q := s.quality
	s.mu.Lock()
	s.lookups.Add(1)
	now := s.clock()
	st := s.state(path, now)
	s.prune(st, now)
	s.expireActives(st, now)

	var bytes int64
	for _, r := range st.reports {
		bytes += r.bytes
	}
	window := s.cfg.Window.Seconds()
	rateBps := float64(bytes) * 8 / window
	if rateBps > st.maxRateBps {
		st.maxRateBps = rateBps
	}
	cap := float64(st.capacityBps)
	if cap <= 0 {
		cap = st.maxRateBps
	}
	u := 0.0
	if cap > 0 {
		u = rateBps / cap
		if u > 1 {
			u = 1
		}
	}
	ctx := Context{U: u, Q: st.qEWMA, N: len(st.starts)}
	// Quality sampling: outcome, per-source evidence ages, and the
	// RTT/loss estimate this lookup effectively served (minRTT + q is
	// the expected RTT a new connection on the path will see). Gathered
	// under the lock, recorded after it.
	var (
		outcome              quality.Outcome
		ageActive, agePassiv int64 = -1, -1
		predRTT              int64
		predLoss             float64
		predValid            bool
	)
	if q != nil {
		freshest := st.lastActive
		if st.lastPassive > freshest {
			freshest = st.lastPassive
		}
		switch {
		case freshest == 0:
			outcome = quality.OutcomeFallback
		case s.cfg.FreshTTL < 0 || now-freshest <= s.cfg.FreshTTL:
			outcome = quality.OutcomeFresh
		default:
			outcome = quality.OutcomeStale
		}
		if st.lastActive > 0 {
			ageActive = int64(now - st.lastActive)
		}
		if st.lastPassive > 0 {
			agePassiv = int64(now - st.lastPassive)
		}
		if st.minRTT > 0 {
			predRTT = int64(st.minRTT + st.qEWMA)
			predLoss = st.lossEWMA
			predValid = true
		}
	}
	s.mu.Unlock()
	if m != nil {
		m.Lookups.Inc()
		m.LookupSeconds.Observe(time.Since(start))
	}
	if h := s.health; h != nil {
		h.RecordLookup(string(path))
	}
	if q != nil {
		q.ObserveLookup(string(path), outcome, ageActive, agePassiv, predRTT, predLoss, predValid)
	}
	return ctx, nil
}

// ReportStart implements Reporter.
func (s *Server) ReportStart(path PathKey) error {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	s.mu.Lock()
	s.reports.Add(1)
	now := s.clock()
	st := s.state(path, now)
	st.starts = append(st.starts, now)
	s.mu.Unlock()
	if m != nil {
		m.Reports.Inc()
		m.ReportSeconds.Observe(time.Since(start))
	}
	if h := s.health; h != nil {
		h.RecordReport(string(path))
	}
	return nil
}

// ReportEnd implements Reporter.
func (s *Server) ReportEnd(path PathKey, r Report) error {
	return s.report(path, r, true)
}

// ReportProgress folds a mid-connection report in without retiring the
// sender's registration — the paper's long-connection refinement: "if the
// connections are long, we could communicate with the context server
// multiple times within the same connection." The report should carry the
// bytes moved since the previous report, not the running total.
func (s *Server) ReportProgress(path PathKey, r Report) error {
	return s.report(path, r, false)
}

func (s *Server) report(path PathKey, r Report, end bool) error {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	// Passive reports are weighed by policy: their byte evidence and
	// queue contribution are scaled by PassiveWeight (negative drops the
	// evidence but still maintains the start/end registration, so n
	// stays honest).
	weight := 1.0
	if r.Source == SourcePassive {
		s.passiveReports.Add(1)
		weight = s.cfg.PassiveWeight
	}
	qt := s.quality
	s.mu.Lock()
	s.reports.Add(1)
	now := s.clock()
	st := s.state(path, now)
	if end && len(st.starts) > 0 {
		st.starts = st.starts[1:]
	}
	if weight > 0 {
		bytes := r.Bytes
		if weight != 1 {
			bytes = int64(float64(bytes) * weight)
		}
		st.reports = append(st.reports, timedReport{at: now, bytes: bytes})
		// Freshness metadata: this source just contributed evidence.
		if r.Source == SourcePassive {
			st.lastPassive = now
		} else {
			st.lastActive = now
		}
	}
	s.prune(st, now)

	if weight > 0 {
		if r.MinRTT > 0 && (st.minRTT == 0 || r.MinRTT < st.minRTT) {
			st.minRTT = r.MinRTT
		}
		if r.AvgRTT > 0 && st.minRTT > 0 {
			q := r.AvgRTT - st.minRTT
			if q < 0 {
				q = 0
			}
			if !st.qInit {
				st.qEWMA = q
				st.qInit = true
			} else {
				a := s.cfg.QueueAlpha * weight
				if a > 1 {
					a = 1
				}
				st.qEWMA = sim.Time(a*float64(q) + (1-a)*float64(st.qEWMA))
			}
		}
		// Loss EWMA, smoothed like the queue estimate; kept so the
		// quality layer can score the loss side of the served context.
		a := s.cfg.QueueAlpha * weight
		if a > 1 {
			a = 1
		}
		if !st.lossInit {
			st.lossEWMA = r.LossRate
			st.lossInit = true
		} else {
			st.lossEWMA = a*r.LossRate + (1-a)*st.lossEWMA
		}
	}
	s.mu.Unlock()
	if m != nil {
		m.Reports.Inc()
		if r.Source == SourcePassive {
			m.PassiveReports.Inc()
		}
		m.ReportSeconds.Observe(time.Since(start))
	}
	if h := s.health; h != nil {
		h.RecordReport(string(path))
	}
	if qt != nil && weight > 0 && r.AvgRTT > 0 {
		src := quality.SourceActive
		if r.Source == SourcePassive {
			src = quality.SourcePassive
		}
		qt.ObserveReport(string(path), src, int64(r.AvgRTT), r.LossRate)
	}
	return nil
}

// expireActives drops registrations older than the TTL.
func (s *Server) expireActives(st *pathState, now sim.Time) {
	if s.cfg.ActiveTTL < 0 {
		return
	}
	cutoff := now - s.cfg.ActiveTTL
	i := 0
	for i < len(st.starts) && st.starts[i] < cutoff {
		i++
	}
	if i > 0 {
		st.starts = append(st.starts[:0], st.starts[i:]...)
	}
}

func (s *Server) prune(st *pathState, now sim.Time) {
	cutoff := now - s.cfg.Window
	i := 0
	for i < len(st.reports) && st.reports[i].at < cutoff {
		i++
	}
	if i > 0 {
		st.reports = append(st.reports[:0], st.reports[i:]...)
	}
}

// ActiveSenders returns the currently registered sender count for a path
// (after TTL expiry).
func (s *Server) ActiveSenders(path PathKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	st := s.state(path, now)
	s.expireActives(st, now)
	return len(st.starts)
}

// Stats returns the lookup and report operation counts. It is safe to
// call while the server is serving.
func (s *Server) Stats() (lookups, reports uint64) {
	return s.lookups.Load(), s.reports.Load()
}

// PassiveReports returns how many reports were tagged SourcePassive
// (a subset of the Stats report count). Safe to call while serving.
func (s *Server) PassiveReports() uint64 { return s.passiveReports.Load() }

// PathCount returns the number of paths with state.
func (s *Server) PathCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.paths)
}

// Freshness enumerates every path's per-source evidence age — the
// quality tracker's path source (quality.Tracker.AddPathSource), polled
// only when a /debug/context snapshot is taken, never on the hot path.
func (s *Server) Freshness() []quality.PathFreshness {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	out := make([]quality.PathFreshness, 0, len(s.paths))
	for k, st := range s.paths {
		pf := quality.PathFreshness{Path: string(k), AgeActiveNs: -1, AgePassiveNs: -1}
		if st.lastActive > 0 {
			pf.AgeActiveNs = int64(now - st.lastActive)
		}
		if st.lastPassive > 0 {
			pf.AgePassiveNs = int64(now - st.lastPassive)
		}
		out = append(out, pf)
	}
	return out
}

// Oracle is a ContextSource with perfect, instantaneous knowledge — the
// upper bound that "Remy-Phi-ideal" and the coordinated Cubic sweeps
// assume. It wraps a function that reads ground truth (e.g. the bottleneck
// link monitor inside the simulator).
type Oracle struct {
	// Fn returns the true current context.
	Fn func() Context
}

// Lookup implements ContextSource.
func (o Oracle) Lookup(PathKey) (Context, error) { return o.Fn(), nil }

// LinkOracle builds an Oracle over a monitored link: utilization and mean
// queueing delay over a trailing measurement (the monitor's interval), and
// an externally maintained sender count.
func LinkOracle(mon *sim.LinkMonitor, active func() int) Oracle {
	return Oracle{Fn: func() Context {
		return Context{U: mon.Utilization(), Q: mon.MeanQueueDelay(), N: active()}
	}}
}
