package phi

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/health"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ServerConfig tunes the context server's estimators.
type ServerConfig struct {
	// Window is the sliding window over which reported bytes are turned
	// into a utilization estimate (default 10 s).
	Window sim.Time
	// QueueAlpha is the EWMA smoothing factor for the queue estimate
	// (default 0.3).
	QueueAlpha float64
	// ActiveTTL expires a registered sender that never reports back (a
	// crashed client must not inflate the n estimate forever). Default
	// 60 s; zero keeps the default, negative disables expiry.
	ActiveTTL sim.Time
	// PassiveWeight scales the influence of passively inferred reports
	// (Report.Source == SourcePassive) relative to cooperative ones: the
	// report's bytes and its queue-estimate contribution are both
	// multiplied by it. 1 treats both sources equally, values below 1
	// discount inference noise, above 1 trust the egress view more than
	// sender self-reports. Default 1; zero keeps the default, negative
	// ignores passive reports entirely (their byte/RTT evidence is
	// dropped; start/end registration still maintains n).
	PassiveWeight float64
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Window == 0 {
		c.Window = 10 * sim.Second
	}
	if c.QueueAlpha == 0 {
		c.QueueAlpha = 0.3
	}
	if c.ActiveTTL == 0 {
		c.ActiveTTL = 60 * sim.Second
	}
	if c.PassiveWeight == 0 {
		c.PassiveWeight = 1
	}
	return c
}

// Server is the in-process context server: the repository of shared state
// for one administrative domain. It is fed only at connection boundaries
// (the paper's minimal-overhead "practical" design) and is safe for
// concurrent use, so the same instance can back the wire protocol.
//
// Time is injected as a clock function so the server runs both inside the
// simulator (engine.Now) and against the wall clock.
type Server struct {
	mu    sync.Mutex
	clock func() sim.Time
	cfg   ServerConfig
	paths map[PathKey]*pathState

	// lookups and reports count operations; they are atomics so Stats can
	// be read while the server is serving without taking s.mu.
	// passiveReports counts the subset of reports tagged SourcePassive.
	lookups        atomic.Uint64
	reports        atomic.Uint64
	passiveReports atomic.Uint64

	// metrics is the optional telemetry surface (nil = uninstrumented;
	// the hot path then pays exactly one branch). Set before serving.
	metrics *ServerMetrics

	// tracer records per-operation spans (nil = untraced; same one-branch
	// discipline as metrics). Set before serving.
	tracer *trace.Tracer

	// health feeds the live anomaly monitor (nil = unmonitored; its
	// Record methods are nil-safe, so the hot path pays one branch).
	// Set before serving.
	health *health.Monitor
}

// SetHealth attaches (or detaches, with nil) the live health monitor.
// Call before serving.
func (s *Server) SetHealth(m *health.Monitor) { s.health = m }

type timedReport struct {
	at    sim.Time
	bytes int64
}

type pathState struct {
	capacityBps int64
	// starts holds the registration times of active senders (FIFO); a
	// ReportEnd retires the oldest, matching the paper's
	// one-start-one-end protocol without per-flow identifiers.
	starts     []sim.Time
	reports    []timedReport
	minRTT     sim.Time
	qEWMA      sim.Time
	qInit      bool
	maxRateBps float64
}

// NewServer creates a context server reading time from clock.
func NewServer(clock func() sim.Time, cfg ServerConfig) *Server {
	return &Server{clock: clock, cfg: cfg.withDefaults(), paths: make(map[PathKey]*pathState)}
}

// RegisterPath declares a path's bottleneck capacity, enabling calibrated
// utilization estimates. Without it the capacity is learned as the largest
// aggregate rate ever observed.
func (s *Server) RegisterPath(path PathKey, capacityBps int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state(path).capacityBps = capacityBps
}

func (s *Server) state(path PathKey) *pathState {
	st, ok := s.paths[path]
	if !ok {
		st = &pathState{}
		s.paths[path] = st
		if m := s.metrics; m != nil {
			m.Paths.Set(float64(len(s.paths)))
		}
	}
	return st
}

// Lookup implements ContextSource. It never fails in-process.
func (s *Server) Lookup(path PathKey) (Context, error) {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	s.mu.Lock()
	s.lookups.Add(1)
	st := s.state(path)
	now := s.clock()
	s.prune(st, now)
	s.expireActives(st, now)

	var bytes int64
	for _, r := range st.reports {
		bytes += r.bytes
	}
	window := s.cfg.Window.Seconds()
	rateBps := float64(bytes) * 8 / window
	if rateBps > st.maxRateBps {
		st.maxRateBps = rateBps
	}
	cap := float64(st.capacityBps)
	if cap <= 0 {
		cap = st.maxRateBps
	}
	u := 0.0
	if cap > 0 {
		u = rateBps / cap
		if u > 1 {
			u = 1
		}
	}
	ctx := Context{U: u, Q: st.qEWMA, N: len(st.starts)}
	s.mu.Unlock()
	if m != nil {
		m.Lookups.Inc()
		m.LookupSeconds.Observe(time.Since(start))
	}
	if h := s.health; h != nil {
		h.RecordLookup(string(path))
	}
	return ctx, nil
}

// ReportStart implements Reporter.
func (s *Server) ReportStart(path PathKey) error {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	s.mu.Lock()
	s.reports.Add(1)
	st := s.state(path)
	st.starts = append(st.starts, s.clock())
	s.mu.Unlock()
	if m != nil {
		m.Reports.Inc()
		m.ReportSeconds.Observe(time.Since(start))
	}
	if h := s.health; h != nil {
		h.RecordReport(string(path))
	}
	return nil
}

// ReportEnd implements Reporter.
func (s *Server) ReportEnd(path PathKey, r Report) error {
	return s.report(path, r, true)
}

// ReportProgress folds a mid-connection report in without retiring the
// sender's registration — the paper's long-connection refinement: "if the
// connections are long, we could communicate with the context server
// multiple times within the same connection." The report should carry the
// bytes moved since the previous report, not the running total.
func (s *Server) ReportProgress(path PathKey, r Report) error {
	return s.report(path, r, false)
}

func (s *Server) report(path PathKey, r Report, end bool) error {
	m := s.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	// Passive reports are weighed by policy: their byte evidence and
	// queue contribution are scaled by PassiveWeight (negative drops the
	// evidence but still maintains the start/end registration, so n
	// stays honest).
	weight := 1.0
	if r.Source == SourcePassive {
		s.passiveReports.Add(1)
		weight = s.cfg.PassiveWeight
	}
	s.mu.Lock()
	s.reports.Add(1)
	st := s.state(path)
	if end && len(st.starts) > 0 {
		st.starts = st.starts[1:]
	}
	now := s.clock()
	if weight > 0 {
		bytes := r.Bytes
		if weight != 1 {
			bytes = int64(float64(bytes) * weight)
		}
		st.reports = append(st.reports, timedReport{at: now, bytes: bytes})
	}
	s.prune(st, now)

	if weight > 0 {
		if r.MinRTT > 0 && (st.minRTT == 0 || r.MinRTT < st.minRTT) {
			st.minRTT = r.MinRTT
		}
		if r.AvgRTT > 0 && st.minRTT > 0 {
			q := r.AvgRTT - st.minRTT
			if q < 0 {
				q = 0
			}
			if !st.qInit {
				st.qEWMA = q
				st.qInit = true
			} else {
				a := s.cfg.QueueAlpha * weight
				if a > 1 {
					a = 1
				}
				st.qEWMA = sim.Time(a*float64(q) + (1-a)*float64(st.qEWMA))
			}
		}
	}
	s.mu.Unlock()
	if m != nil {
		m.Reports.Inc()
		if r.Source == SourcePassive {
			m.PassiveReports.Inc()
		}
		m.ReportSeconds.Observe(time.Since(start))
	}
	if h := s.health; h != nil {
		h.RecordReport(string(path))
	}
	return nil
}

// expireActives drops registrations older than the TTL.
func (s *Server) expireActives(st *pathState, now sim.Time) {
	if s.cfg.ActiveTTL < 0 {
		return
	}
	cutoff := now - s.cfg.ActiveTTL
	i := 0
	for i < len(st.starts) && st.starts[i] < cutoff {
		i++
	}
	if i > 0 {
		st.starts = append(st.starts[:0], st.starts[i:]...)
	}
}

func (s *Server) prune(st *pathState, now sim.Time) {
	cutoff := now - s.cfg.Window
	i := 0
	for i < len(st.reports) && st.reports[i].at < cutoff {
		i++
	}
	if i > 0 {
		st.reports = append(st.reports[:0], st.reports[i:]...)
	}
}

// ActiveSenders returns the currently registered sender count for a path
// (after TTL expiry).
func (s *Server) ActiveSenders(path PathKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(path)
	s.expireActives(st, s.clock())
	return len(st.starts)
}

// Stats returns the lookup and report operation counts. It is safe to
// call while the server is serving.
func (s *Server) Stats() (lookups, reports uint64) {
	return s.lookups.Load(), s.reports.Load()
}

// PassiveReports returns how many reports were tagged SourcePassive
// (a subset of the Stats report count). Safe to call while serving.
func (s *Server) PassiveReports() uint64 { return s.passiveReports.Load() }

// PathCount returns the number of paths with state.
func (s *Server) PathCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.paths)
}

// Oracle is a ContextSource with perfect, instantaneous knowledge — the
// upper bound that "Remy-Phi-ideal" and the coordinated Cubic sweeps
// assume. It wraps a function that reads ground truth (e.g. the bottleneck
// link monitor inside the simulator).
type Oracle struct {
	// Fn returns the true current context.
	Fn func() Context
}

// Lookup implements ContextSource.
func (o Oracle) Lookup(PathKey) (Context, error) { return o.Fn(), nil }

// LinkOracle builds an Oracle over a monitored link: utilization and mean
// queueing delay over a trailing measurement (the monitor's interval), and
// an externally maintained sender count.
func LinkOracle(mon *sim.LinkMonitor, active func() int) Oracle {
	return Oracle{Fn: func() Context {
		return Context{U: mon.Utilization(), Q: mon.MeanQueueDelay(), N: active()}
	}}
}
