// Package phi implements the paper's primary contribution: information
// sharing and coordination across the senders of a large provider ("one of
// the five computers").
//
// The centerpiece is the context server (Section 2.2.2), a repository of
// shared state from which the congestion context — bottleneck utilization
// u, queue occupancy q, and number of competing senders n — is computed.
// Senders look the context up once when a connection starts, choose
// congestion-control parameters fit for current conditions via a Policy,
// and report their experience back when the connection ends.
//
// Two context sources are provided: Server (the practical design, fed only
// by connection-boundary reports) and Oracle (up-to-the-minute state, the
// "ideal" upper bound in Table 3). Package phiwire exposes Server over
// real TCP.
package phi

import (
	"fmt"

	"repro/internal/sim"
)

// PathKey identifies a network path whose state is shared — in the paper's
// measurement, a destination /24 within a one-minute slice; in the
// simulations, the single bottleneck. Any stable string works.
type PathKey string

// Context is the congestion context of a path (Section 2.2.2): when any of
// these is high, congestion is high and senders should be conservative.
type Context struct {
	// U is the estimated bottleneck utilization in [0, ~1].
	U float64
	// Q is the estimated queueing delay (RTT in excess of propagation).
	Q sim.Time
	// N is the number of senders currently active on the path.
	N int
}

func (c Context) String() string {
	return fmt.Sprintf("u=%.2f q=%v n=%d", c.U, c.Q, c.N)
}

// ReportSource says who produced a report: a cooperating sender speaking
// the connection-boundary protocol, or passive inference over traffic
// observed at the egress (internal/ingest). The paper's production story
// (Section 2.1) is the passive kind — per-path context recovered from
// sampled flow records, with no sender cooperation anywhere — so the
// server tags the two and can weigh them differently (ServerConfig.
// PassiveWeight). The zero value is cooperative, which keeps every
// existing caller and the wire protocol unchanged.
type ReportSource uint8

const (
	// SourceCooperative marks sender-initiated reports (the default).
	SourceCooperative ReportSource = iota
	// SourcePassive marks reports inferred from observed traffic.
	SourcePassive
)

func (s ReportSource) String() string {
	switch s {
	case SourceCooperative:
		return "cooperative"
	case SourcePassive:
		return "passive"
	default:
		return "unknown"
	}
}

// Report is what a sender tells the context server when a connection ends:
// enough to refresh the shared estimates of u, q, and n.
type Report struct {
	// Bytes delivered and the connection's duration, for rate estimation.
	Bytes    int64
	Duration sim.Time
	// AvgRTT and MinRTT expose queueing (AvgRTT - MinRTT ~ q, as in Remy).
	AvgRTT sim.Time
	MinRTT sim.Time
	// LossRate is the sender-observed loss rate.
	LossRate float64
	// Source tags who produced the report. The zero value (cooperative)
	// is what the wire protocol carries; passive reports are injected
	// in-process by the ingest pipeline.
	Source ReportSource
}

// ContextSource answers lookups at connection start.
type ContextSource interface {
	// Lookup returns the current context for the path. Implementations
	// must degrade gracefully: an error tells the caller to fall back to
	// default behavior (incremental deployability, Section 2.2.3).
	Lookup(path PathKey) (Context, error)
}

// Reporter accepts the sender-side half of the protocol.
type Reporter interface {
	// ReportStart registers a new active connection on the path.
	ReportStart(path PathKey) error
	// ReportEnd unregisters it and folds its experience into shared state.
	ReportEnd(path PathKey, r Report) error
}

// Station is a full client handle on the shared state: both lookup and
// reporting. phi.Server implements it in-process; phiwire.Client over TCP.
type Station interface {
	ContextSource
	Reporter
}
