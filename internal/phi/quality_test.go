package phi

import (
	"math/rand"
	"testing"

	"repro/internal/quality"
	"repro/internal/sim"
)

// qualityClock is a manually advanced sim clock for deterministic
// freshness arithmetic.
type qualityClock struct{ now sim.Time }

func (c *qualityClock) fn() func() sim.Time { return func() sim.Time { return c.now } }

func TestServerQualityOutcomes(t *testing.T) {
	clk := &qualityClock{now: sim.Time(1e12)}
	tr := quality.New(quality.Config{})
	srv := NewServer(clk.fn(), ServerConfig{Window: 10 * sim.Second, FreshTTL: 5 * sim.Second})
	srv.SetQuality(tr)

	// No evidence yet: fallback.
	if _, err := srv.Lookup("p"); err != nil {
		t.Fatal(err)
	}
	// Evidence lands; the next lookup is a fresh hit.
	if err := srv.ReportEnd("p", Report{Bytes: 1 << 20, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	clk.now += 1 * sim.Second
	if _, err := srv.Lookup("p"); err != nil {
		t.Fatal(err)
	}
	// Past the TTL: stale hit.
	clk.now += 7 * sim.Second
	if _, err := srv.Lookup("p"); err != nil {
		t.Fatal(err)
	}

	fresh, stale, fallback := tr.CoverageCounts()
	if fresh != 1 || stale != 1 || fallback != 1 {
		t.Fatalf("coverage = %d/%d/%d, want 1 fresh, 1 stale, 1 fallback", fresh, stale, fallback)
	}
	// The fresh lookup sampled a 1s active staleness age.
	snap := tr.Snapshot()
	if n := snap.Freshness["active"].Count; n != 2 {
		t.Fatalf("active staleness samples = %d, want 2 (fresh + stale lookups)", n)
	}
}

func TestServerQualityAccuracyPairing(t *testing.T) {
	clk := &qualityClock{now: sim.Time(1e12)}
	tr := quality.New(quality.Config{})
	srv := NewServer(clk.fn(), ServerConfig{})
	srv.SetQuality(tr)

	// Seed the estimators: minRTT 30ms, q = 10ms → predicted RTT 40ms.
	if err := srv.ReportEnd("p", Report{Bytes: 1 << 20, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond, LossRate: 0.01}); err != nil {
		t.Fatal(err)
	}
	clk.now += sim.Second
	if _, err := srv.Lookup("p"); err != nil {
		t.Fatal(err)
	}
	// The paired report observes 50ms: |err| = 10ms.
	if err := srv.ReportEnd("p", Report{Bytes: 1 << 20, AvgRTT: 50 * sim.Millisecond, MinRTT: 30 * sim.Millisecond, LossRate: 0.01}); err != nil {
		t.Fatal(err)
	}
	a := tr.Snapshot().Accuracy["active"]
	if a.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", a.Pairs)
	}
	if a.RTTAbsErrP90Us < 9000 || a.RTTAbsErrP90Us > 11000 {
		t.Fatalf("rtt_abs_err_p90 = %vus, want ~10000us", a.RTTAbsErrP90Us)
	}
}

func TestServerQualityPassiveSourceAndDrift(t *testing.T) {
	clk := &qualityClock{now: sim.Time(1e12)}
	tr := quality.New(quality.Config{})
	srv := NewServer(clk.fn(), ServerConfig{})
	srv.SetQuality(tr)

	if err := srv.ReportEnd("p", Report{Bytes: 1 << 20, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	clk.now += 2 * sim.Second
	if err := srv.ReportEnd("p", Report{Bytes: 1 << 20, AvgRTT: 45 * sim.Millisecond, MinRTT: 30 * sim.Millisecond, Source: SourcePassive}); err != nil {
		t.Fatal(err)
	}

	// Per-source freshness metadata is distinct.
	var pf quality.PathFreshness
	for _, f := range srv.Freshness() {
		if f.Path == "p" {
			pf = f
		}
	}
	if pf.AgeActiveNs != int64(2*sim.Second) {
		t.Fatalf("age_active = %d, want 2s", pf.AgeActiveNs)
	}
	if pf.AgePassiveNs != 0 {
		t.Fatalf("age_passive = %d, want 0 (just reported)", pf.AgePassiveNs)
	}

	// Drift paired passive (45ms) against active (40ms): +5ms.
	d := tr.Snapshot().Drift
	if d.Pairs != 1 {
		t.Fatalf("drift pairs = %d, want 1", d.Pairs)
	}
	if d.SignedMeanU < 4800 || d.SignedMeanU > 5200 {
		t.Fatalf("drift signed mean = %vus, want ~+5000us", d.SignedMeanU)
	}
}

func TestSnapshotRoundTripPreservesFreshness(t *testing.T) {
	clk := &qualityClock{now: sim.Time(1e12)}
	srv := NewServer(clk.fn(), ServerConfig{})
	if err := srv.ReportEnd("p", Report{Bytes: 1 << 20, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond, LossRate: 0.02}); err != nil {
		t.Fatal(err)
	}
	clk.now += sim.Second
	if err := srv.ReportEnd("p", Report{Bytes: 1 << 20, AvgRTT: 45 * sim.Millisecond, MinRTT: 30 * sim.Millisecond, Source: SourcePassive}); err != nil {
		t.Fatal(err)
	}

	exported := srv.ExportState()
	restored := NewServer(clk.fn(), ServerConfig{})
	restored.ImportState(exported)

	want := srv.Freshness()
	got := restored.Freshness()
	if len(got) != len(want) {
		t.Fatalf("path count %d != %d", len(got), len(want))
	}
	if got[0] != want[0] {
		t.Fatalf("freshness diverged across round trip: %+v != %+v", got[0], want[0])
	}
	// Loss EWMA state must survive too (accuracy pairing depends on it).
	re := restored.ExportState()
	if !re[0].LossInit || re[0].LossEWMA == 0 {
		t.Fatalf("loss EWMA lost in round trip: %+v", re[0])
	}
	if re[0].LastActive != exported[0].LastActive || re[0].LastPassive != exported[0].LastPassive {
		t.Fatalf("last-update metadata lost: %+v != %+v", re[0], exported[0])
	}
}

// TestEvictionUnderZipfTail drives a heavy-tailed path population
// through a bounded server: the bound must hold, evictions must be
// counted, and the hottest paths must survive while the one-hit tail is
// shed.
func TestEvictionUnderZipfTail(t *testing.T) {
	clk := &qualityClock{now: sim.Time(1e12)}
	tr := quality.New(quality.Config{})
	const maxPaths = 128
	srv := NewServer(clk.fn(), ServerConfig{MaxPaths: maxPaths})
	srv.SetQuality(tr)

	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 4096)
	names := make(map[uint64]PathKey)
	report := Report{Bytes: 1 << 16, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond}
	for i := 0; i < 20000; i++ {
		clk.now += sim.Millisecond
		id := zipf.Uint64()
		p, ok := names[id]
		if !ok {
			p = PathKey("path-" + string(rune('a'+id%26)) + "-" + itoa(int(id)))
			names[id] = p
		}
		if err := srv.ReportStart(p); err != nil {
			t.Fatal(err)
		}
		if err := srv.ReportEnd(p, report); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Lookup(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.PathCount(); got > maxPaths {
		t.Fatalf("path map grew to %d, bound is %d", got, maxPaths)
	}
	if srv.EvictedPaths() == 0 {
		t.Fatal("no evictions under a 4096-path Zipf tail with a 128-path bound")
	}
	// The head of the Zipf distribution (id 1, the most frequent path)
	// must have survived every eviction batch.
	hot := names[1]
	found := false
	for _, ps := range srv.ExportState() {
		if ps.Path == hot {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("hottest path %q was evicted", hot)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Quality-hook overhead benchmarks, mirroring the health pair: the
// disabled case is the acceptance bar (one nil check over the plain
// server); the attached case pays the tracker's atomics and pairing
// table.
func benchQualityLookup(b *testing.B, attach bool) {
	var now sim.Time
	s := NewServer(func() sim.Time { now += sim.Millisecond; return now }, ServerConfig{})
	if attach {
		s.SetQuality(quality.New(quality.Config{}))
	}
	s.RegisterPath("p", 1e9)
	if err := s.ReportStart("p"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup("p"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerLookupQualityDisabled(b *testing.B) { benchQualityLookup(b, false) }
func BenchmarkServerLookupQualityAttached(b *testing.B) { benchQualityLookup(b, true) }

func benchQualityReportCycle(b *testing.B, attach bool) {
	var now sim.Time
	s := NewServer(func() sim.Time { now += sim.Millisecond; return now }, ServerConfig{})
	if attach {
		s.SetQuality(quality.New(quality.Config{}))
	}
	s.RegisterPath("p", 1e9)
	r := Report{Bytes: 1 << 16, Duration: 100 * sim.Millisecond, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReportStart("p"); err != nil {
			b.Fatal(err)
		}
		if err := s.ReportEnd("p", r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerReportCycleQualityDisabled(b *testing.B) { benchQualityReportCycle(b, false) }
func BenchmarkServerReportCycleQualityAttached(b *testing.B) { benchQualityReportCycle(b, true) }
