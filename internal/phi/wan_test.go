package phi

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// TestPhiOnInterDCWAN exercises the Section 3.1 deployment: Phi on a
// provider's inter-DC WAN, a multi-hop parking-lot topology where every
// hop has its own congestion context. The long path consults all of its
// hops and adapts to the most congested one.
func TestPhiOnInterDCWAN(t *testing.T) {
	eng := sim.NewEngine()
	cfg := sim.DefaultParkingLot(3)
	cfg.HopRate = 20_000_000 // modest hops so cross traffic bites
	pl := sim.NewParkingLot(eng, cfg)

	// Per-hop oracles straight off the hop monitors.
	var mons []*sim.LinkMonitor
	for _, hop := range pl.Hops {
		mons = append(mons, hop.Monitor())
	}
	probe1 := sim.NewRateProbe(eng, mons[1], 100*sim.Millisecond, sim.Second)

	// Saturate hop 1 with cross traffic.
	cross, _ := tcp.Connect(eng, 100, pl.CrossSenders[1], pl.CrossReceivers[1], 0,
		tcp.NewCubic(tcp.DefaultCubicParams()), tcp.Config{})
	cross.Start()
	eng.RunUntil(5 * sim.Second)

	// The long path's Phi client reads every hop's context and uses the
	// worst (max utilization) — the natural multi-hop composition.
	policy := DefaultPolicy()
	worst := Context{}
	for i := range pl.Hops {
		var u float64
		if i == 1 {
			u = probe1.Utilization()
		} else {
			u = sim.NewRateProbe(eng, mons[i], 100*sim.Millisecond, sim.Second).Utilization()
		}
		if u > worst.U {
			worst.U = u
		}
	}
	if worst.U < 0.8 {
		t.Fatalf("cross traffic did not load hop 1: u=%.2f", worst.U)
	}
	params := policy.Params(worst)
	if params.InitialWindow > 8 {
		t.Errorf("long flow should launch conservatively into a loaded WAN: %v", params)
	}

	// And with the congested hop idle, the same composition is aggressive.
	idleParams := policy.Params(Context{U: 0.05})
	if idleParams.InitialWindow <= params.InitialWindow {
		t.Errorf("idle-WAN params %v not more aggressive than loaded %v", idleParams, params)
	}

	// Run the long transfer with the chosen parameters end to end across
	// all three hops to confirm the WAN path itself works under load.
	long, _ := tcp.Connect(eng, 1, pl.LongSender, pl.LongReceiver, 5_000_000,
		tcp.NewCubic(params), tcp.Config{})
	long.Start()
	eng.RunUntil(120 * sim.Second)
	if !long.Done() || long.Stats().BytesAcked != 5_000_000 {
		t.Fatalf("long transfer across loaded WAN incomplete: %+v", long.Stats())
	}
	if long.Stats().MinRTT < pl.LongRTT() {
		t.Errorf("min RTT %v below propagation %v", long.Stats().MinRTT, pl.LongRTT())
	}
}
