package priority_test

import (
	"fmt"

	"repro/internal/priority"
)

// One entity's flows share an ensemble: weights steer bandwidth toward
// important flows while the aggregate stays TCP-friendly (Section 3.3).
func ExampleEnsemble() {
	ens := priority.NewEnsemble()
	video := ens.Join(3)
	bulk := ens.Join(1)

	video.Init(0)
	bulk.Init(0)
	fmt.Printf("window split %0.f:%0.f\n", video.Window(), bulk.Window())
	fmt.Println("members:", ens.Members())
	// Output:
	// window split 3:1
	// members: 2
}

// The allocator keeps per-flow weights summing to the flow count.
func ExampleAllocator() {
	alloc := priority.NewAllocator([]priority.Class{
		{Name: "video", Share: 3},
		{Name: "bulk", Share: 1},
	}, 0.1)
	alloc.Join("video")
	alloc.Join("bulk")
	w := alloc.Weights()
	fmt.Printf("video %.1f + bulk %.1f = %.0f\n", w["video"], w["bulk"], w["video"]+w["bulk"])
	// Output:
	// video 1.5 + bulk 0.5 = 2
}
