// Package priority implements the cross-flow prioritization of Section
// 3.3: a single entity with many flows over the same bottleneck makes
// some flows more aggressive than others according to importance, while
// keeping the ensemble as a whole TCP-friendly — the cross-host analogue
// of the Congestion Manager and TCP Session work the paper cites.
//
// The mechanism is MulTCP-style weighted congestion control: a flow with
// weight w behaves like w standard flows (additive increase of w segments
// per RTT, multiplicative decrease of 1/(2w) on loss). An Allocator hands
// out weights by importance class under the invariant that the weights
// sum to the flow count, so the ensemble's aggregate aggressiveness
// equals that of the same number of standard flows.
package priority

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// Class is an importance class with a relative share.
type Class struct {
	// Name labels the class ("video-hd", "bulk").
	Name string
	// Share is the class's relative importance (> 0).
	Share float64
}

// Allocator assigns per-flow weights such that the weights of all active
// flows always sum to the number of active flows (ensemble
// TCP-friendliness), distributed across classes in proportion to
// Share x class population.
type Allocator struct {
	classes map[string]float64
	// active maps class name -> number of active flows.
	active map[string]int
	// MinWeight floors any flow's weight (default 0.1) so low-priority
	// flows cannot starve completely.
	MinWeight float64
}

// NewAllocator creates an allocator over the given classes.
func NewAllocator(classes []Class, minWeight float64) *Allocator {
	if minWeight <= 0 {
		minWeight = 0.1
	}
	a := &Allocator{classes: make(map[string]float64), active: make(map[string]int), MinWeight: minWeight}
	for _, c := range classes {
		if c.Share <= 0 {
			panic(fmt.Sprintf("priority: class %q has non-positive share", c.Name))
		}
		a.classes[c.Name] = c.Share
	}
	return a
}

// Join registers a flow of the given class and returns its weight. The
// caller must Leave when the flow ends. Unknown classes panic.
func (a *Allocator) Join(class string) float64 {
	if _, ok := a.classes[class]; !ok {
		panic(fmt.Sprintf("priority: unknown class %q", class))
	}
	a.active[class]++
	return a.Weight(class)
}

// Leave unregisters a flow.
func (a *Allocator) Leave(class string) {
	if a.active[class] > 0 {
		a.active[class]--
	}
}

// Active returns the number of active flows.
func (a *Allocator) Active() int {
	n := 0
	for _, c := range a.active {
		n += c
	}
	return n
}

// Weight returns the current per-flow weight of a class: the class's
// share-weighted slice of the ensemble budget (= total active flows),
// divided among its flows, floored at MinWeight with the excess taken
// proportionally from the other classes.
func (a *Allocator) Weight(class string) float64 {
	w := a.weights()
	return w[class]
}

// Weights returns the weight of every class with active flows.
func (a *Allocator) Weights() map[string]float64 { return a.weights() }

func (a *Allocator) weights() map[string]float64 {
	total := float64(a.Active())
	out := make(map[string]float64)
	if total == 0 {
		return out
	}
	// Share mass present = sum over classes with active flows.
	var mass float64
	var names []string
	for name, n := range a.active {
		if n > 0 {
			mass += a.classes[name] * float64(n)
			names = append(names, name)
		}
	}
	sort.Strings(names)
	// First pass: proportional weights; collect flooring deficit.
	floored := map[string]bool{}
	for {
		var freeMass, flooredBudget float64
		for _, name := range names {
			if floored[name] {
				flooredBudget += a.MinWeight * float64(a.active[name])
			} else {
				freeMass += a.classes[name] * float64(a.active[name])
			}
		}
		budget := total - flooredBudget
		changed := false
		for _, name := range names {
			if floored[name] {
				out[name] = a.MinWeight
				continue
			}
			w := budget * a.classes[name] / freeMass
			if w < a.MinWeight {
				floored[name] = true
				changed = true
				break
			}
			out[name] = w
		}
		if !changed {
			return out
		}
	}
}

// Weighted is a MulTCP-style weighted congestion controller: a flow with
// weight w emulates the aggregate behaviour of w standard AIMD flows —
// additive increase of w segments per RTT and a multiplicative decrease of
// 1/(2w) on loss (one of its w virtual flows halving). Weight 1 is
// standard Reno-style AIMD; the steady-state bandwidth share scales
// roughly linearly in w.
type Weighted struct {
	// InitialSsthresh bounds slow start (default 65536 segments).
	InitialSsthresh float64

	weight   float64
	cwnd     float64
	ssthresh float64
}

// NewWeighted builds a weighted controller. Weight must be positive.
func NewWeighted(weight float64) *Weighted {
	if weight <= 0 {
		panic("priority: weight must be positive")
	}
	return &Weighted{weight: weight}
}

// Weight returns the flow's weight.
func (w *Weighted) Weight() float64 { return w.weight }

// SetWeight retunes the weight mid-flight (used by Ensemble as members
// join and leave). Non-positive weights are ignored.
func (w *Weighted) SetWeight(weight float64) {
	if weight > 0 {
		w.weight = weight
	}
}

// Name implements tcp.CongestionControl.
func (w *Weighted) Name() string { return fmt.Sprintf("multcp-w%.2g", w.weight) }

// Init implements tcp.CongestionControl: w virtual flows start with w
// standard initial windows.
func (w *Weighted) Init(now sim.Time) {
	w.cwnd = math.Max(1, 2*w.weight)
	w.ssthresh = w.InitialSsthresh
	if w.ssthresh <= 0 {
		w.ssthresh = 65536
	}
}

// OnAck implements tcp.CongestionControl.
func (w *Weighted) OnAck(info tcp.AckInfo) {
	if w.cwnd < w.ssthresh {
		// Slow start: w segments per acked segment, as w flows would in
		// aggregate.
		w.cwnd += w.weight * info.AckedSegments
		w.cwnd = math.Min(w.cwnd, w.ssthresh)
		return
	}
	// Congestion avoidance: w segments per RTT.
	w.cwnd += w.weight * info.AckedSegments / w.cwnd
}

// OnLoss implements tcp.CongestionControl: one of the w virtual flows
// halves, so the ensemble loses 1/(2w) of its window.
func (w *Weighted) OnLoss(now sim.Time) {
	w.cwnd *= 1 - 1/(2*w.weight)
	if w.cwnd < 1 {
		w.cwnd = 1
	}
	w.ssthresh = math.Max(w.cwnd, 2)
}

// OnTimeout implements tcp.CongestionControl.
func (w *Weighted) OnTimeout(now sim.Time) {
	w.ssthresh = math.Max(w.cwnd*(1-1/(2*w.weight)), 2)
	w.cwnd = 1
}

// Window implements tcp.CongestionControl.
func (w *Weighted) Window() float64 { return w.cwnd }

// Ssthresh implements tcp.CongestionControl.
func (w *Weighted) Ssthresh() float64 { return w.ssthresh }

// PacingInterval implements tcp.CongestionControl.
func (w *Weighted) PacingInterval() sim.Time { return 0 }

var _ tcp.CongestionControl = (*Weighted)(nil)
