package priority

import (
	"math"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// Ensemble coordinates the congestion state of all of one entity's flows
// crossing a shared bottleneck, in the manner of the Congestion Manager
// and TCP Session work Section 3.3 builds on — except the flows may live
// on different hosts, with Phi providing the shared state. One aggregate
// controller reacts to the union of the members' ack and loss streams;
// each member flow is granted a weight-proportional share of the
// aggregate window.
//
// Ensemble TCP-friendliness is structural: the aggregate behaves like k
// standard flows (a MulTCP controller with weight = member count), no
// matter how unequally the members split it.
type Ensemble struct {
	agg         *Weighted
	members     map[*Member]struct{}
	totalWeight float64

	initialized bool
	lastLoss    sim.Time
	// LossGuard spaces aggregate decreases: multiple members reporting
	// the same congestion event within this window count once
	// (default 150 ms, about one WAN RTT).
	LossGuard sim.Time
}

// NewEnsemble creates an empty ensemble.
func NewEnsemble() *Ensemble {
	return &Ensemble{
		agg:       NewWeighted(1),
		members:   make(map[*Member]struct{}),
		LossGuard: 150 * sim.Millisecond,
	}
}

// Join adds a flow with the given weight (> 0) and returns its
// per-connection congestion controller.
func (e *Ensemble) Join(weight float64) *Member {
	if weight <= 0 {
		panic("priority: member weight must be positive")
	}
	m := &Member{ens: e, weight: weight}
	e.members[m] = struct{}{}
	e.totalWeight += weight
	e.agg.SetWeight(float64(len(e.members)))
	return m
}

// Leave removes a member (no-op if already removed).
func (e *Ensemble) Leave(m *Member) {
	if _, ok := e.members[m]; !ok {
		return
	}
	delete(e.members, m)
	e.totalWeight -= m.weight
	if n := len(e.members); n > 0 {
		e.agg.SetWeight(float64(n))
	}
}

// Members returns the current member count.
func (e *Ensemble) Members() int { return len(e.members) }

// AggregateWindow returns the ensemble's total window in segments.
func (e *Ensemble) AggregateWindow() float64 { return e.agg.Window() }

// Member is the per-flow view of an ensemble: a tcp.CongestionControl
// whose window is its weight share of the aggregate.
type Member struct {
	ens    *Ensemble
	weight float64
}

// Weight returns the member's weight.
func (m *Member) Weight() float64 { return m.weight }

// Name implements tcp.CongestionControl.
func (m *Member) Name() string { return "ensemble" }

// Init implements tcp.CongestionControl. The first member to start
// initializes the aggregate; later members inherit its state (they join a
// warm ensemble — the whole point of sharing).
func (m *Member) Init(now sim.Time) {
	if !m.ens.initialized {
		m.ens.agg.Init(now)
		m.ens.initialized = true
	}
}

// OnAck implements tcp.CongestionControl: every member's acks clock the
// aggregate.
func (m *Member) OnAck(info tcp.AckInfo) { m.ens.agg.OnAck(info) }

// OnLoss implements tcp.CongestionControl: one decrease per congestion
// event, no matter how many members witness it.
func (m *Member) OnLoss(now sim.Time) {
	if now-m.ens.lastLoss < m.ens.LossGuard {
		return
	}
	m.ens.lastLoss = now
	m.ens.agg.OnLoss(now)
}

// OnTimeout implements tcp.CongestionControl (also guarded).
func (m *Member) OnTimeout(now sim.Time) {
	if now-m.ens.lastLoss < m.ens.LossGuard {
		return
	}
	m.ens.lastLoss = now
	m.ens.agg.OnTimeout(now)
}

// Window implements tcp.CongestionControl: the weight share of the
// aggregate, floored at one segment.
func (m *Member) Window() float64 {
	if m.ens.totalWeight <= 0 {
		return 1
	}
	w := m.ens.agg.Window() * m.weight / m.ens.totalWeight
	return math.Max(1, w)
}

// Ssthresh implements tcp.CongestionControl.
func (m *Member) Ssthresh() float64 { return m.ens.agg.Ssthresh() }

// PacingInterval implements tcp.CongestionControl.
func (m *Member) PacingInterval() sim.Time { return 0 }

var _ tcp.CongestionControl = (*Member)(nil)
