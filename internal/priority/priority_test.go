package priority

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/tcp"
)

func classes() []Class {
	return []Class{{Name: "video", Share: 3}, {Name: "bulk", Share: 1}}
}

func TestAllocatorWeightsSumToFlowCount(t *testing.T) {
	a := NewAllocator(classes(), 0.1)
	for i := 0; i < 3; i++ {
		a.Join("video")
	}
	for i := 0; i < 5; i++ {
		a.Join("bulk")
	}
	w := a.Weights()
	total := w["video"]*3 + w["bulk"]*5
	if math.Abs(total-8) > 1e-9 {
		t.Errorf("ensemble weight = %v, want 8 (TCP-friendly)", total)
	}
	if w["video"] <= w["bulk"] {
		t.Errorf("video weight %v should exceed bulk %v", w["video"], w["bulk"])
	}
	// Proportionality: per-flow video weight / bulk weight = 3.
	if ratio := w["video"] / w["bulk"]; math.Abs(ratio-3) > 1e-9 {
		t.Errorf("weight ratio = %v, want 3", ratio)
	}
}

func TestAllocatorMinWeightFloor(t *testing.T) {
	a := NewAllocator([]Class{{Name: "hi", Share: 1000}, {Name: "lo", Share: 1}}, 0.25)
	a.Join("hi")
	a.Join("lo")
	w := a.Weights()
	if w["lo"] != 0.25 {
		t.Errorf("lo weight = %v, want floored at 0.25", w["lo"])
	}
	if math.Abs(w["hi"]+w["lo"]-2) > 1e-9 {
		t.Errorf("sum = %v, want 2", w["hi"]+w["lo"])
	}
}

func TestAllocatorJoinLeave(t *testing.T) {
	a := NewAllocator(classes(), 0)
	w1 := a.Join("video")
	if w1 != 1 {
		t.Errorf("single flow weight = %v, want 1 (whole ensemble)", w1)
	}
	a.Join("bulk")
	a.Leave("video")
	if a.Active() != 1 {
		t.Errorf("active = %d", a.Active())
	}
	if w := a.Weight("bulk"); w != 1 {
		t.Errorf("last flow weight = %v, want 1", w)
	}
	a.Leave("bulk")
	a.Leave("bulk") // surplus leave is a no-op
	if a.Active() != 0 {
		t.Error("active should be 0")
	}
	if len(a.Weights()) != 0 {
		t.Error("weights with no flows should be empty")
	}
}

func TestAllocatorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"unknown class": func() { NewAllocator(classes(), 0).Join("nope") },
		"bad share":     func() { NewAllocator([]Class{{Name: "x", Share: 0}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: for any population, per-flow weights sum to the flow count
// and never fall below the floor.
func TestAllocatorInvariantProperty(t *testing.T) {
	f := func(nVideo, nBulk uint8) bool {
		a := NewAllocator(classes(), 0.1)
		for i := 0; i < int(nVideo%20); i++ {
			a.Join("video")
		}
		for i := 0; i < int(nBulk%20); i++ {
			a.Join("bulk")
		}
		n := a.Active()
		if n == 0 {
			return true
		}
		w := a.Weights()
		sum := 0.0
		for name, count := range map[string]int{"video": int(nVideo % 20), "bulk": int(nBulk % 20)} {
			if count == 0 {
				continue
			}
			if w[name] < 0.1-1e-12 {
				return false
			}
			sum += w[name] * float64(count)
		}
		return math.Abs(sum-float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedScalesGrowth(t *testing.T) {
	heavy := NewWeighted(4)
	light := NewWeighted(0.5)
	heavy.Init(0)
	light.Init(0)
	if heavy.Window() <= light.Window() {
		t.Errorf("initial windows: heavy %v, light %v", heavy.Window(), light.Window())
	}
	for i := 0; i < 20; i++ {
		info := tcp.AckInfo{Now: sim.Time(i) * sim.Millisecond, AckedSegments: 1, RTT: 100 * sim.Millisecond}
		heavy.OnAck(info)
		light.OnAck(info)
	}
	if heavy.Window() <= 2*light.Window() {
		t.Errorf("growth not weight-scaled: heavy %v vs light %v", heavy.Window(), light.Window())
	}
	if heavy.Weight() != 4 || light.Weight() != 0.5 {
		t.Error("weights lost")
	}
	if heavy.Name() != "multcp-w4" {
		t.Errorf("name = %s", heavy.Name())
	}
	if heavy.PacingInterval() != 0 || heavy.Ssthresh() <= 0 {
		t.Error("interface methods broken")
	}
}

func TestWeightedSoftensDecrease(t *testing.T) {
	heavy := NewWeighted(4) // decrease 1/8
	light := NewWeighted(1) // decrease 1/2
	for _, cc := range []*Weighted{heavy, light} {
		cc.ssthresh = 4 // force congestion avoidance quickly
		cc.Init(0)
		cc.InitialSsthresh = 4
		cc.Init(0)
		for i := 0; i < 100; i++ {
			cc.OnAck(tcp.AckInfo{AckedSegments: 1, RTT: 100 * sim.Millisecond})
		}
	}
	hw, lw := heavy.Window(), light.Window()
	heavy.OnLoss(0)
	light.OnLoss(0)
	heavyDrop := 1 - heavy.Window()/hw
	lightDrop := 1 - light.Window()/lw
	if heavyDrop >= lightDrop {
		t.Errorf("heavy flow dropped %v, light %v: weighting not softening decrease", heavyDrop, lightDrop)
	}
	heavy.OnTimeout(0)
	if heavy.Window() != 1 {
		t.Errorf("timeout window = %v", heavy.Window())
	}
}

func TestWeightedRejectsBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewWeighted(0)
}

// TestEnsembleSharingInSimulator drives two long-running member flows of
// one ensemble over a dumbbell: a weight-3 member should take roughly
// three times the bandwidth of a weight-1 member, because the split is
// structural.
func TestEnsembleSharingInSimulator(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(2))
	ens := NewEnsemble()
	heavy, _ := tcp.Connect(eng, 1, d.Senders[0], d.Receivers[0], 0,
		ens.Join(3), tcp.Config{})
	light, _ := tcp.Connect(eng, 2, d.Senders[1], d.Receivers[1], 0,
		ens.Join(1), tcp.Config{})
	heavy.Start()
	light.Start()
	eng.RunUntil(120 * sim.Second)
	hB := heavy.Stats().BytesAcked
	lB := light.Stats().BytesAcked
	ratio := float64(hB) / float64(lB)
	t.Logf("heavy/light = %.2f (%d vs %d bytes)", ratio, hB, lB)
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("bandwidth ratio = %.2f, want roughly 3", ratio)
	}
	// The ensemble still uses the full pipe.
	total := float64(hB+lB) * 8 / 120
	if total < 0.75*15e6 {
		t.Errorf("ensemble throughput %.2f Mbps too low", total/1e6)
	}
}

// TestEnsembleFriendliness checks the Section 3.3 invariant: an ensemble
// of two flows with weights {3, 1} competing against two standard flows
// takes about the same aggregate share as an ensemble of two
// equal-weight flows would — reweighting inside the ensemble must not
// change its aggregate aggressiveness.
func TestEnsembleFriendliness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(w1, w2 float64) (ensemble, others float64) {
		eng := sim.NewEngine()
		d := sim.NewDumbbell(eng, sim.DefaultDumbbell(4))
		ens := NewEnsemble()
		mk := func(i int, flow sim.FlowID, cc tcp.CongestionControl) *tcp.Sender {
			s, _ := tcp.Connect(eng, flow, d.Senders[i], d.Receivers[i], 0, cc, tcp.Config{})
			s.Start()
			return s
		}
		e1 := mk(0, 1, ens.Join(w1))
		e2 := mk(1, 2, ens.Join(w2))
		o1 := mk(2, 3, NewWeighted(1))
		o2 := mk(3, 4, NewWeighted(1))
		eng.RunUntil(120 * sim.Second)
		ensB := float64(e1.Stats().BytesAcked + e2.Stats().BytesAcked)
		oth := float64(o1.Stats().BytesAcked + o2.Stats().BytesAcked)
		return ensB, oth
	}
	weightedEns, weightedOth := run(3, 1)
	plainEns, plainOth := run(1, 1)
	weightedShare := weightedEns / (weightedEns + weightedOth)
	plainShare := plainEns / (plainEns + plainOth)
	t.Logf("ensemble share: weighted %.3f vs plain %.3f", weightedShare, plainShare)
	if math.Abs(weightedShare-plainShare) > 0.15 {
		t.Errorf("weighted ensemble share %.3f deviates from plain %.3f by > 0.15",
			weightedShare, plainShare)
	}
}

func TestEnsembleJoinLeave(t *testing.T) {
	ens := NewEnsemble()
	m1 := ens.Join(2)
	m2 := ens.Join(1)
	if ens.Members() != 2 {
		t.Errorf("members = %d", ens.Members())
	}
	m1.Init(0)
	m2.Init(0) // second init inherits warm state
	if m1.Window() <= m2.Window() {
		t.Errorf("weight-2 member window %v should exceed weight-1 %v", m1.Window(), m2.Window())
	}
	// Weight shares: m1 gets 2/3 of the aggregate.
	agg := ens.AggregateWindow()
	if math.Abs(m1.Window()-math.Max(1, agg*2/3)) > 1e-9 {
		t.Errorf("m1 window = %v, want %v", m1.Window(), agg*2/3)
	}
	ens.Leave(m1)
	ens.Leave(m1) // idempotent
	if ens.Members() != 1 {
		t.Errorf("members after leave = %d", ens.Members())
	}
	if m2.Window() < 1 {
		t.Error("window floor broken")
	}
	if m2.Name() != "ensemble" || m2.Weight() != 1 || m2.PacingInterval() != 0 {
		t.Error("member accessors broken")
	}
}

func TestEnsembleLossGuardDedupes(t *testing.T) {
	ens := NewEnsemble()
	m1 := ens.Join(1)
	m2 := ens.Join(1)
	m1.Init(0)
	for i := 0; i < 50; i++ {
		m1.OnAck(tcp.AckInfo{AckedSegments: 1})
	}
	before := ens.AggregateWindow()
	// Both members report the same congestion event within the guard.
	m1.OnLoss(10 * sim.Second)
	m2.OnLoss(10*sim.Second + 20*sim.Millisecond)
	after := ens.AggregateWindow()
	if after < before*0.7 {
		t.Errorf("double decrease: %v -> %v (one event should halve once at w=2: x0.75)", before, after)
	}
	// A later event decreases again.
	m2.OnLoss(20 * sim.Second)
	if ens.AggregateWindow() >= after {
		t.Error("second event did not decrease")
	}
	// Timeout also guarded.
	m1.OnTimeout(20*sim.Second + 10*sim.Millisecond)
	if ens.AggregateWindow() == 1 {
		t.Error("guarded timeout collapsed window")
	}
	m1.OnTimeout(40 * sim.Second)
	if ens.AggregateWindow() != 1 {
		t.Error("unguarded timeout should collapse window")
	}
}

func TestEnsembleRejectsBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewEnsemble().Join(0)
}
