package predict_test

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/sim"
)

// Forecast a download and a call from accumulated history (Section 3.5).
func Example() {
	store := predict.NewStore(0)
	key := predict.Key{Cluster: "comcast-seattle", Service: "video"}
	for i := 0; i < 20; i++ {
		store.Add(key, predict.Sample{
			ThroughputMbps: 8,
			RTT:            80 * sim.Millisecond,
			LossRate:       0.001,
		})
	}

	tf := store.PredictTransfer(key, 10_000_000) // 10 MB
	fmt.Println("expected download:", tf.Expected)

	cf := store.PredictCall(key)
	fmt.Println("call quality:", cf.Quality())
	// Output:
	// expected download: 10s
	// call quality: good
}
