package predict

import (
	"math"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
)

var key = Key{Cluster: "comcast-seattle", Service: "video"}

func fill(s *Store, n int, mbps float64, rtt sim.Time, loss float64) {
	for i := 0; i < n; i++ {
		s.Add(key, Sample{At: sim.Time(i) * sim.Second, ThroughputMbps: mbps, RTT: rtt, LossRate: loss})
	}
}

func TestStoreCapEvictsOldest(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Add(key, Sample{ThroughputMbps: float64(i)})
	}
	if s.Count(key) != 3 {
		t.Fatalf("count = %d, want 3", s.Count(key))
	}
	snap := s.snapshot(key)
	if snap[0].ThroughputMbps != 2 {
		t.Errorf("oldest retained = %v, want 2", snap[0].ThroughputMbps)
	}
}

func TestPredictTransferNeedsEvidence(t *testing.T) {
	s := NewStore(0)
	f := s.PredictTransfer(key, 1_000_000)
	if f.Samples != 0 {
		t.Error("forecast from no history")
	}
	if f.String() != "no history" {
		t.Errorf("String = %q", f.String())
	}
	fill(s, MinSamples-1, 10, 100*sim.Millisecond, 0)
	if s.PredictTransfer(key, 1_000_000).Samples != 0 {
		t.Error("forecast below evidence floor")
	}
}

func TestPredictTransferQuantiles(t *testing.T) {
	s := NewStore(0)
	// Throughputs 1..10 Mbps.
	for i := 1; i <= 10; i++ {
		s.Add(key, Sample{ThroughputMbps: float64(i)})
	}
	f := s.PredictTransfer(key, 10_000_000) // 80 Mbit
	if f.Samples != 10 {
		t.Fatalf("samples = %d", f.Samples)
	}
	// Median throughput 5.5 Mbps -> ~14.5 s.
	want := sim.Seconds(80 / 5.5)
	if math.Abs(float64(f.Expected-want)) > float64(100*sim.Millisecond) {
		t.Errorf("expected = %v, want ~%v", f.Expected, want)
	}
	if f.Optimistic >= f.Expected || f.Expected >= f.Pessimistic {
		t.Errorf("quantile ordering broken: %v < %v < %v", f.Optimistic, f.Expected, f.Pessimistic)
	}
	if f.String() == "" {
		t.Error("empty forecast string")
	}
}

func TestPredictCallGoodNetwork(t *testing.T) {
	s := NewStore(0)
	fill(s, 20, 5, 60*sim.Millisecond, 0.001)
	f := s.PredictCall(key)
	if f.Quality() != QualityGood {
		t.Errorf("quality = %s (MOS %.2f), want good", f.Quality(), f.MOS)
	}
	if f.MOS < 4.0 || f.MOS > 4.5 {
		t.Errorf("MOS = %v", f.MOS)
	}
}

func TestPredictCallDegradesWithLossAndDelay(t *testing.T) {
	good := NewStore(0)
	fill(good, 20, 5, 60*sim.Millisecond, 0.001)
	lossy := NewStore(0)
	fill(lossy, 20, 5, 60*sim.Millisecond, 0.08)
	slow := NewStore(0)
	fill(slow, 20, 5, 800*sim.Millisecond, 0.001)

	g := good.PredictCall(key).MOS
	l := lossy.PredictCall(key).MOS
	d := slow.PredictCall(key).MOS
	if l >= g {
		t.Errorf("loss did not degrade MOS: %v vs %v", l, g)
	}
	if d >= g {
		t.Errorf("delay did not degrade MOS: %v vs %v", d, g)
	}
	if lossy.PredictCall(key).Quality() == QualityGood {
		t.Error("8% loss rated good")
	}
	if slow.PredictCall(key).Quality() != QualityPoor {
		t.Errorf("800ms RTT rated %s, want poor", slow.PredictCall(key).Quality())
	}
}

func TestPredictCallUnknownWithoutHistory(t *testing.T) {
	s := NewStore(0)
	if q := s.PredictCall(key).Quality(); q != "unknown" {
		t.Errorf("quality = %s", q)
	}
}

func TestRToMOSBounds(t *testing.T) {
	if rToMOS(-10) != 1 || rToMOS(0) != 1 {
		t.Error("low R should floor at 1")
	}
	if rToMOS(100) != 4.5 || rToMOS(200) != 4.5 {
		t.Error("high R should cap at 4.5")
	}
	if m := rToMOS(93.2); m < 4.3 || m > 4.5 {
		t.Errorf("R=93.2 MOS = %v", m)
	}
	// Monotone over the operating range.
	prev := rToMOS(0)
	for r := 1.0; r <= 100; r++ {
		m := rToMOS(r)
		if m < prev-1e-9 {
			t.Fatalf("MOS not monotone at R=%v", r)
		}
		prev = m
	}
}

func TestAddFlowStats(t *testing.T) {
	s := NewStore(0)
	st := &tcp.FlowStats{BytesAcked: 1_250_000, Start: 0, End: sim.Second,
		PacketsSent: 100, Retransmits: 2,
		RTTCount: 1, RTTSum: 150 * sim.Millisecond}
	s.AddFlowStats(key, st)
	snap := s.snapshot(key)
	if len(snap) != 1 {
		t.Fatal("sample not recorded")
	}
	if snap[0].ThroughputMbps != 10 {
		t.Errorf("throughput = %v, want 10", snap[0].ThroughputMbps)
	}
	if snap[0].LossRate != 0.02 {
		t.Errorf("loss = %v", snap[0].LossRate)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(key, Sample{ThroughputMbps: 5, RTT: 100 * sim.Millisecond})
				s.PredictTransfer(key, 1000)
				s.PredictCall(key)
			}
		}()
	}
	wg.Wait()
	if s.Count(key) != 100 {
		t.Errorf("count = %d, want capped at 100", s.Count(key))
	}
}

func TestPredictTransferAtHour(t *testing.T) {
	s := NewStore(0)
	// Fast at 04:00, slow at 20:00, every day for a week.
	for day := 0; day < 7; day++ {
		base := sim.Time(day) * 24 * 3600 * sim.Second
		s.Add(key, Sample{At: base + 4*3600*sim.Second, ThroughputMbps: 40})
		s.Add(key, Sample{At: base + 20*3600*sim.Second, ThroughputMbps: 2})
	}
	night := s.PredictTransferAtHour(key, 10_000_000, 4)
	evening := s.PredictTransferAtHour(key, 10_000_000, 20)
	if night.Samples != 7 || evening.Samples != 7 {
		t.Fatalf("samples = %d/%d, want 7/7", night.Samples, evening.Samples)
	}
	if night.Expected >= evening.Expected {
		t.Errorf("night %v should beat evening %v", night.Expected, evening.Expected)
	}
	// The unconditioned forecast blends both regimes.
	all := s.PredictTransfer(key, 10_000_000)
	if all.Expected <= night.Expected || all.Expected >= evening.Expected {
		t.Errorf("blended %v should lie between %v and %v", all.Expected, night.Expected, evening.Expected)
	}
	// An hour with no history yields no forecast.
	if got := s.PredictTransferAtHour(key, 1000, 12); got.Samples != 0 {
		t.Errorf("hour with no history forecast from %d samples", got.Samples)
	}
	// Hour normalization.
	if s.PredictTransferAtHour(key, 1000, -20).Samples != 7 {
		t.Error("negative hour not normalized (-20 ≡ 4)")
	}
}
