// Package predict implements the performance-prediction application of
// Section 3.5: the aggregate network-performance history available inside
// a large provider is enough to tell an application, before it starts a
// transfer or a call, how well it is likely to go — and to surface that
// to the user ("if the VoIP quality is expected to be poor, the user
// might hold off on an important call").
package predict

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Key scopes a performance history: a client cluster (e.g. a metro or
// /24) and a service class.
type Key struct {
	Cluster string
	Service string
}

// Sample is one observed flow's performance.
type Sample struct {
	At             sim.Time
	ThroughputMbps float64
	RTT            sim.Time
	LossRate       float64
}

// Store keeps a bounded history of samples per key. It is safe for
// concurrent use (senders across a fleet report into one store).
type Store struct {
	mu      sync.Mutex
	cap     int
	history map[Key][]Sample
}

// NewStore creates a store keeping up to capPerKey samples per key
// (default 1024).
func NewStore(capPerKey int) *Store {
	if capPerKey <= 0 {
		capPerKey = 1024
	}
	return &Store{cap: capPerKey, history: make(map[Key][]Sample)}
}

// Add records a sample, evicting the oldest beyond capacity.
func (s *Store) Add(k Key, sample Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := append(s.history[k], sample)
	if len(h) > s.cap {
		h = h[len(h)-s.cap:]
	}
	s.history[k] = h
}

// AddFlowStats folds a finished flow's stats in.
func (s *Store) AddFlowStats(k Key, st *tcp.FlowStats) {
	s.Add(k, Sample{
		At:             st.End,
		ThroughputMbps: st.ThroughputBps() / 1e6,
		RTT:            st.AvgRTT(),
		LossRate:       st.LossRate(),
	})
}

// Count returns the number of samples held for a key.
func (s *Store) Count(k Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history[k])
}

// snapshot returns a copy of the samples for a key.
func (s *Store) snapshot(k Key) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.history[k]...)
}

// TransferForecast predicts a transfer's completion time as quantiles:
// optimistic (P90 throughput), expected (median), pessimistic (P10).
type TransferForecast struct {
	Bytes       int64
	Optimistic  sim.Time
	Expected    sim.Time
	Pessimistic sim.Time
	// Samples is the evidence size; 0 means no forecast was possible.
	Samples int
}

func (f TransferForecast) String() string {
	if f.Samples == 0 {
		return "no history"
	}
	return fmt.Sprintf("%d bytes: %v (p10 %v, p90 %v, n=%d)",
		f.Bytes, f.Expected, f.Optimistic, f.Pessimistic, f.Samples)
}

// MinSamples is the evidence floor below which no forecast is issued.
const MinSamples = 5

// PredictTransfer forecasts how long a transfer of the given size will
// take from the key's recent history.
func (s *Store) PredictTransfer(k Key, bytes int64) TransferForecast {
	return s.predictTransfer(k, bytes, nil)
}

// PredictTransferAtHour conditions the forecast on the time of day:
// only samples whose timestamp falls in the given hour (0-23, by the
// store's virtual clock) inform it. Network weather is diurnal — the
// evening peak and the 4 a.m. trough are different networks — so an
// hour-conditioned forecast is sharper when enough history exists; when
// it does not, it degrades to no-forecast rather than guessing.
func (s *Store) PredictTransferAtHour(k Key, bytes int64, hour int) TransferForecast {
	h := ((hour % 24) + 24) % 24
	keep := func(sm Sample) bool {
		return int(sm.At/sim.Second/3600)%24 == h
	}
	return s.predictTransfer(k, bytes, keep)
}

func (s *Store) predictTransfer(k Key, bytes int64, keep func(Sample) bool) TransferForecast {
	samples := s.snapshot(k)
	if keep != nil {
		kept := samples[:0]
		for _, sm := range samples {
			if keep(sm) {
				kept = append(kept, sm)
			}
		}
		samples = kept
	}
	if len(samples) < MinSamples {
		return TransferForecast{Bytes: bytes}
	}
	var thr []float64
	for _, sm := range samples {
		if sm.ThroughputMbps > 0 {
			thr = append(thr, sm.ThroughputMbps)
		}
	}
	if len(thr) < MinSamples {
		return TransferForecast{Bytes: bytes}
	}
	at := func(q float64) sim.Time {
		mbps := metrics.Quantile(thr, q)
		if mbps <= 0 {
			return sim.MaxTime
		}
		return sim.Seconds(float64(bytes) * 8 / (mbps * 1e6))
	}
	return TransferForecast{
		Bytes:       bytes,
		Optimistic:  at(0.9),
		Expected:    at(0.5),
		Pessimistic: at(0.1),
		Samples:     len(thr),
	}
}

// CallForecast predicts voice-call quality as a mean opinion score.
type CallForecast struct {
	// MOS is the predicted mean opinion score in [1, 4.5].
	MOS float64
	// RTT and LossRate are the median history values it derives from.
	RTT      sim.Time
	LossRate float64
	Samples  int
}

// Quality buckets for surfacing to users.
const (
	QualityGood = "good"
	QualityFair = "fair"
	QualityPoor = "poor"
)

// Quality maps the MOS to a user-facing bucket.
func (f CallForecast) Quality() string {
	switch {
	case f.Samples == 0:
		return "unknown"
	case f.MOS >= 4.0:
		return QualityGood
	case f.MOS >= 3.3:
		return QualityFair
	default:
		return QualityPoor
	}
}

// PredictCall forecasts VoIP quality from the key's history using a
// simplified ITU-T E-model: the R-factor starts at 93.2 and is degraded
// by one-way delay and loss, then mapped to a MOS.
func (s *Store) PredictCall(k Key) CallForecast {
	samples := s.snapshot(k)
	if len(samples) < MinSamples {
		return CallForecast{}
	}
	var rtts, losses []float64
	for _, sm := range samples {
		rtts = append(rtts, float64(sm.RTT))
		losses = append(losses, sm.LossRate)
	}
	rtt := sim.Time(metrics.Median(rtts))
	loss := metrics.Median(losses)

	oneWayMs := rtt.Milliseconds() / 2
	r := 93.2
	// Delay impairment (piecewise-linear approximation of Id).
	r -= 0.024 * oneWayMs
	if oneWayMs > 177.3 {
		r -= 0.11 * (oneWayMs - 177.3)
	}
	// Loss impairment (Ie-eff with Bpl ~ 10 for G.711-like codecs).
	r -= 30 * (loss * 100) / (loss*100 + 10)
	mos := rToMOS(r)
	return CallForecast{MOS: mos, RTT: rtt, LossRate: loss, Samples: len(samples)}
}

// rToMOS is the standard E-model R-to-MOS mapping.
func rToMOS(r float64) float64 {
	switch {
	case r <= 0:
		return 1
	case r >= 100:
		return 4.5
	default:
		mos := 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
		if mos < 1 {
			// The cubic term dips just below 1 for tiny R; MOS floors at 1.
			mos = 1
		}
		return mos
	}
}
