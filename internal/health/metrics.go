package health

import "repro/internal/telemetry"

// Metrics are the monitor's telemetry handles. Alert fan-out touches
// them on the rotation goroutine; only Events is on the ingestion hot
// path. All handles are nil-safe, so an unwired monitor pays nothing.
type Metrics struct {
	// Events counts data-path events ingested (lookups + reports).
	Events *telemetry.Counter
	// Anomalies counts anomalies opened.
	Anomalies *telemetry.Counter
	// Recoveries counts anomalies resolved.
	Recoveries *telemetry.Counter
	// Localized counts anomalies that got a localization pin.
	Localized *telemetry.Counter
	// Active gauges currently-open anomalies.
	Active *telemetry.Gauge
	// Slices gauges distinct workload slices tracked.
	Slices *telemetry.Gauge
}

// NewMetrics registers the monitor's metrics. A nil registry yields
// nil handles throughout, which no-op.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Events:     reg.Counter("phi_health_events_total", "Data-path events ingested by the health monitor.", nil),
		Anomalies:  reg.Counter("phi_health_anomalies_total", "Volume-dip anomalies detected.", nil),
		Recoveries: reg.Counter("phi_health_recoveries_total", "Anomalies resolved after sustained recovery.", nil),
		Localized:  reg.Counter("phi_health_localized_total", "Anomalies attributed to a slice by localization.", nil),
		Active:     reg.Gauge("phi_health_anomalies_active", "Currently open anomalies.", nil),
		Slices:     reg.Gauge("phi_health_slices_tracked", "Distinct workload slices tracked.", nil),
	}
}
