package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Status values, in decreasing severity: an active anomaly wins, then a
// tripped shard breaker, then an unwarmed baseline, then ok.
const (
	StatusAnomalous = "anomalous"
	StatusDegraded  = "degraded"
	StatusWarming   = "warming"
	StatusOK        = "ok"
)

// Snapshot is one consistent view of the monitor, as served by
// /debug/health.
type Snapshot struct {
	Status  string     `json:"status"`
	Now     time.Time  `json:"now"`
	UptimeS float64    `json:"uptime_s"`
	Window  WindowInfo `json:"window"`

	Totals  Totals        `json:"totals"`
	Routing RoutingCounts `json:"routing"`
	Shards  []ShardStatus `json:"shards,omitempty"`

	// TopSlices are the hottest slices by last-bucket rate (up to TopK).
	TopSlices []SliceStatus `json:"top_slices"`

	Active []Anomaly `json:"active_anomalies"`
	Recent []Anomaly `json:"recent_anomalies"`

	Diagnosis DiagInfo `json:"diagnosis"`
}

// WindowInfo describes the rollup window geometry.
type WindowInfo struct {
	BucketMs      float64 `json:"bucket_ms"`
	Buckets       int     `json:"buckets"`
	Rotations     uint64  `json:"rotations"`
	SlicesTracked int     `json:"slices_tracked"`
}

// Totals are whole-process counters plus the last bucket's rate.
type Totals struct {
	Lookups    uint64  `json:"lookups_total"`
	Reports    uint64  `json:"reports_total"`
	RatePerSec float64 `json:"rate_per_sec"`
	OpenConns  int64   `json:"open_conns"`
}

// RoutingCounts are cumulative frontend routing decisions.
type RoutingCounts struct {
	Retries     uint64 `json:"retries"`
	Failovers   uint64 `json:"failovers"`
	Degraded    uint64 `json:"degraded"`
	BreakerOpen uint64 `json:"breaker_open"`
}

// ShardStatus is one backend shard's live view.
type ShardStatus struct {
	ID            int     `json:"id"`
	RatePerSec    float64 `json:"rate_per_sec"`
	ErrRatePerSec float64 `json:"err_rate_per_sec"`
	Calls         uint64  `json:"calls_total"`
	Errors        uint64  `json:"errors_total"`
	BreakerOpen   bool    `json:"breaker_open"`
	// SnapshotAgeS is seconds since the shard's last successful state
	// snapshot; nil when snapshotting is off or no snapshot has
	// succeeded yet. Staleness here bounds how much learned context a
	// crash would lose.
	SnapshotAgeS *float64 `json:"snapshot_age_s,omitempty"`
}

// SliceStatus is one workload slice's live view.
type SliceStatus struct {
	Slice              string  `json:"slice"`
	RatePerSec         float64 `json:"rate_per_sec"`
	BaselineRatePerSec float64 `json:"baseline_rate_per_sec"`
	Anomalous          bool    `json:"anomalous"`
}

// DiagInfo summarizes the periodic diagnosis sweep over the rolling
// total series.
type DiagInfo struct {
	Runs          uint64  `json:"runs"`
	EventsLastRun int     `json:"events_last_run"`
	LastDepth     float64 `json:"last_event_depth,omitempty"`
}

// Snapshot captures a consistent view. Safe on nil (zero Snapshot).
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	var down []bool
	if fn := m.shardStatus.Load(); fn != nil {
		down = (*fn)()
	}
	var snapAges []float64
	if fn := m.snapshotAges.Load(); fn != nil {
		snapAges = (*fn)()
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	now := m.cfg.Clock()
	snap := Snapshot{
		Now:     now,
		UptimeS: now.Sub(m.startedAt).Seconds(),
		Window: WindowInfo{
			BucketMs:      float64(m.cfg.BucketDur) / float64(time.Millisecond),
			Buckets:       m.cfg.Buckets,
			Rotations:     m.rotations,
			SlicesTracked: len(m.all),
		},
		Totals: Totals{
			Lookups:    m.lookups.Load(),
			Reports:    m.reports.Load(),
			RatePerSec: m.totalRate,
			OpenConns:  m.conns.Load(),
		},
		Routing: RoutingCounts{
			Retries:     m.routing[RouteRetry].Load(),
			Failovers:   m.routing[RouteFailover].Load(),
			Degraded:    m.routing[RouteDegraded].Load(),
			BreakerOpen: m.routing[RouteBreakerOpen].Load(),
		},
	}

	breakerOpen := false
	for i := range m.shards {
		sh := &m.shards[i]
		st := ShardStatus{
			ID:            i,
			RatePerSec:    sh.rate,
			ErrRatePerSec: sh.errRate,
			Calls:         sh.callsTotal.Load(),
			Errors:        sh.errsTotal.Load(),
		}
		if i < len(down) && down[i] {
			st.BreakerOpen = true
			breakerOpen = true
		}
		if i < len(snapAges) && snapAges[i] >= 0 {
			age := snapAges[i]
			st.SnapshotAgeS = &age
		}
		snap.Shards = append(snap.Shards, st)
	}

	top := make([]*sliceSeries, len(m.all))
	copy(top, m.all)
	sort.Slice(top, func(i, j int) bool {
		if top[i].rate != top[j].rate {
			return top[i].rate > top[j].rate
		}
		return top[i].key < top[j].key
	})
	if len(top) > m.cfg.TopK {
		top = top[:m.cfg.TopK]
	}
	sec := m.bucketSec()
	for _, s := range top {
		snap.TopSlices = append(snap.TopSlices, SliceStatus{
			Slice:              s.key,
			RatePerSec:         s.rate,
			BaselineRatePerSec: s.det.mean / sec,
			Anomalous:          s.det.active != nil,
		})
	}

	// Anomaly structs are mutated under mu; copy the values out. The
	// Pinned/Coverage maps are replaced wholesale by localization, never
	// mutated in place, so sharing them with the copy is safe.
	for _, a := range m.active {
		snap.Active = append(snap.Active, *a)
	}
	for _, a := range m.recent {
		snap.Recent = append(snap.Recent, *a)
	}

	snap.Diagnosis = DiagInfo{Runs: m.diagRuns, EventsLastRun: len(m.diagLast)}
	if n := len(m.diagLast); n > 0 {
		snap.Diagnosis.LastDepth = m.diagLast[n-1].Depth
	}

	switch {
	case len(m.active) > 0:
		snap.Status = StatusAnomalous
	case breakerOpen:
		snap.Status = StatusDegraded
	case m.totalDet.warm < m.cfg.WarmupBuckets:
		snap.Status = StatusWarming
	default:
		snap.Status = StatusOK
	}
	return snap
}

// Handler serves the monitor state as JSON (default) or a terminal-
// friendly text summary (?format=text), following the /debug/traces
// handler's conventions. Safe on a nil monitor (serves a zero snapshot).
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := m.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeText(w, &snap)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}

func writeText(w interface{ Write([]byte) (int, error) }, s *Snapshot) {
	fmt.Fprintf(w, "health: %s  uptime %.0fs  window %d x %.0fms (%d rotations)\n",
		s.Status, s.UptimeS, s.Window.Buckets, s.Window.BucketMs, s.Window.Rotations)
	fmt.Fprintf(w, "totals: %d lookups, %d reports, %.1f ev/s, %d conns open\n",
		s.Totals.Lookups, s.Totals.Reports, s.Totals.RatePerSec, s.Totals.OpenConns)
	fmt.Fprintf(w, "routing: %d retries, %d failovers, %d degraded, %d breaker-open\n",
		s.Routing.Retries, s.Routing.Failovers, s.Routing.Degraded, s.Routing.BreakerOpen)
	for _, sh := range s.Shards {
		state := "closed"
		if sh.BreakerOpen {
			state = "OPEN"
		}
		snapAge := ""
		if sh.SnapshotAgeS != nil {
			snapAge = fmt.Sprintf(", snapshot %.0fs old", *sh.SnapshotAgeS)
		}
		fmt.Fprintf(w, "shard %d: %.1f calls/s, %.1f errs/s, breaker %s (%d calls, %d errors)%s\n",
			sh.ID, sh.RatePerSec, sh.ErrRatePerSec, state, sh.Calls, sh.Errors, snapAge)
	}
	if len(s.TopSlices) > 0 {
		fmt.Fprintf(w, "top slices (%d tracked):\n", s.Window.SlicesTracked)
		for _, sl := range s.TopSlices {
			flag := ""
			if sl.Anomalous {
				flag = "  ** ANOMALOUS **"
			}
			fmt.Fprintf(w, "  %-40s %8.1f ev/s (baseline %.1f)%s\n",
				sl.Slice, sl.RatePerSec, sl.BaselineRatePerSec, flag)
		}
	}
	writeAnomalies := func(label string, list []Anomaly) {
		if len(list) == 0 {
			return
		}
		fmt.Fprintf(w, "%s anomalies:\n", label)
		for _, a := range list {
			loc := a.Localization
			if loc == "" {
				loc = "unlocalized"
			}
			end := "ongoing"
			if !a.Active {
				end = fmt.Sprintf("ended %s", a.EndedAt.Format(time.RFC3339))
			}
			fmt.Fprintf(w, "  #%d %s: depth %.2f (%.1f -> %.1f ev/s), started %s, %s, %s\n",
				a.ID, a.Scope, a.Depth, a.BaselineRate, a.ObservedRate,
				a.StartedAt.Format(time.RFC3339), end, loc)
		}
	}
	writeAnomalies("active", s.Active)
	writeAnomalies("recent", s.Recent)
	fmt.Fprintf(w, "diagnosis sweeps: %d runs, %d events last run\n",
		s.Diagnosis.Runs, s.Diagnosis.EventsLastRun)
}
