package health

import (
	"time"

	"repro/internal/diagnosis"
	"repro/internal/trace"
)

// rotate closes the current bucket: it swaps every slice's counter to
// zero, feeds the sliding diagnosis store, recomputes shard rates, and
// steps the streaming detectors. It runs once per BucketDur on the
// rotation goroutine (tests call it directly with an injected clock).
func (m *Monitor) rotate() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	now := m.cfg.Clock()
	sec := m.bucketSec()

	var total float64
	for _, s := range m.all {
		v := float64(s.cur.Swap(0))
		total += v
		s.rate = v / sec
		m.store.Add(s.slice, m.tick, v)
		m.observe(&s.det, s.key, s, v, now)
	}
	m.totalRate = total / sec
	m.observe(&m.totalDet, "total", nil, total, now)

	for i := range m.shards {
		sh := &m.shards[i]
		sh.rate = float64(sh.calls.Swap(0)) / sec
		sh.errRate = float64(sh.errs.Swap(0)) / sec
	}

	m.checkQualityLocked(now)

	m.rotations++
	if m.rotations%uint64(m.cfg.DiagnoseEvery) == 0 {
		m.sweepLocked()
	}
	m.tick++
}

// checkQualityLocked polls the installed context-quality source and
// maintains the dedicated context-quality anomaly. Unlike the volume
// detectors, the open/close decision belongs to the source (the quality
// tracker already windows its own counters); the monitor's job is alert
// fan-out — metrics, evidence retention, profile capture, logging. For
// this anomaly BaselineRate/ObservedRate carry the source's values
// verbatim (e.g. required vs observed fresh-coverage fraction), not
// events/sec.
func (m *Monitor) checkQualityLocked(now time.Time) {
	fn := m.qualitySource.Load()
	if fn == nil {
		return
	}
	degraded, reason, baseline, observed := (*fn)()

	if a := m.qualityDet.active; a != nil {
		a.ObservedRate = observed
		if baseline > 0 {
			a.Depth = clamp01(1 - observed/baseline)
		}
		if !degraded {
			m.closeAnomalyLocked(&m.qualityDet, now)
		}
		return
	}
	if !degraded {
		return
	}

	m.nextID++
	scope := "context-quality"
	if reason != "" {
		scope += "/" + reason
	}
	a := &Anomaly{
		ID:           m.nextID,
		Scope:        scope,
		StartedAt:    now,
		Active:       true,
		BaselineRate: baseline,
		ObservedRate: observed,
		startTick:    m.tick,
	}
	if baseline > 0 {
		a.Depth = clamp01(1 - observed/baseline)
	}
	m.qualityDet.active = a
	m.active = append(m.active, a)

	m.metrics.Anomalies.Inc()
	m.metrics.Active.Set(float64(len(m.active)))
	// Degraded context quality is a serving-path-wide condition — there
	// is no single affected slice — so every slice's traces become
	// evidence for the retention window.
	m.markEvidence(nil, now)
	if fn := m.profileTrigger.Load(); fn != nil {
		go (*fn)("anomaly " + a.Scope)
	}
	m.log.Warn("context quality degraded",
		"id", a.ID,
		"scope", a.Scope,
		"baseline", baseline,
		"observed", observed,
		"depth", a.Depth,
	)
}

// observe steps one scope's detector with the bucket's event count.
// sser is nil for the total scope.
func (m *Monitor) observe(d *detector, scope string, sser *sliceSeries, count float64, now time.Time) {
	cfg := &m.cfg
	sec := m.bucketSec()

	if a := d.active; a != nil {
		a.ObservedRate = count / sec
		if d.mean > 0 {
			a.Depth = clamp01(1 - count/d.mean)
		}
		if count >= cfg.RecoverRatio*d.mean {
			d.goodRun++
			if d.goodRun >= cfg.RecoverBuckets {
				m.closeAnomalyLocked(d, now)
			}
		} else {
			d.goodRun = 0
		}
		return
	}

	minCount := cfg.MinRate * sec
	anomalous := d.warm >= cfg.WarmupBuckets &&
		d.mean >= minCount &&
		count < cfg.DipRatio*d.mean &&
		d.mean-count > cfg.ZThresh*d.sigma()
	if anomalous {
		d.badRun++
		if d.badRun >= cfg.SustainBuckets {
			m.openAnomalyLocked(d, scope, sser, count, now)
		}
		// Freeze the baseline on suspect buckets so the dip itself does
		// not drag the expectation down toward the fault.
		return
	}
	d.badRun = 0
	if d.warm == 0 {
		// Seed from the first observation: ramping the EWMA up from zero
		// would bake the warmup transient into the variance estimate and
		// deafen the detector for many windows.
		d.mean = count
	} else {
		delta := count - d.mean
		d.mean += cfg.Alpha * delta
		d.variance = (1 - cfg.Alpha) * (d.variance + cfg.Alpha*delta*delta)
	}
	d.warm++
}

// openAnomalyLocked promotes a sustained dip to a first-class alert:
// append to the active set, bump metrics, mark trace evidence, attempt
// localization, and emit the structured alert record.
func (m *Monitor) openAnomalyLocked(d *detector, scope string, sser *sliceSeries, count float64, now time.Time) {
	sec := m.bucketSec()
	m.nextID++
	a := &Anomaly{
		ID:           m.nextID,
		Scope:        scope,
		StartedAt:    now,
		Active:       true,
		BaselineRate: d.mean / sec,
		ObservedRate: count / sec,
		startTick:    m.tick - (m.cfg.SustainBuckets - 1),
	}
	if d.mean > 0 {
		a.Depth = clamp01(1 - count/d.mean)
	}
	d.active = a
	d.goodRun = 0
	d.badRun = 0
	m.active = append(m.active, a)

	m.metrics.Anomalies.Inc()
	m.metrics.Active.Set(float64(len(m.active)))
	m.markEvidence(sser, now)
	m.localizeLocked(a)
	// Fire the profile-capture hook off-lock: a ring capture blocks for
	// its CPU-profile window, which must never stall rotation.
	if fn := m.profileTrigger.Load(); fn != nil {
		go (*fn)("anomaly " + a.Scope)
	}
	m.log.Warn("anomaly detected",
		"id", a.ID,
		"scope", a.Scope,
		"baseline_rps", a.BaselineRate,
		"observed_rps", a.ObservedRate,
		"depth", a.Depth,
		"localization", a.Localization,
	)
}

// closeAnomalyLocked resolves the detector's active anomaly and moves it
// to the recent ring.
func (m *Monitor) closeAnomalyLocked(d *detector, now time.Time) {
	a := d.active
	d.active = nil
	d.goodRun = 0
	a.Active = false
	a.EndedAt = now

	for i, x := range m.active {
		if x == a {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	m.recent = append(m.recent, a)
	if over := len(m.recent) - m.cfg.RecentAnomalies; over > 0 {
		m.recent = append(m.recent[:0], m.recent[over:]...)
	}

	m.metrics.Recoveries.Inc()
	m.metrics.Active.Set(float64(len(m.active)))
	m.log.Info("anomaly resolved",
		"id", a.ID,
		"scope", a.Scope,
		"duration_s", now.Sub(a.StartedAt).Seconds(),
		"localization", a.Localization,
	)
}

// markEvidence pins the evidence traces of an anomaly's scope: the last
// trace seen on each affected slice is marked interesting immediately,
// and the slice keeps marking its traced requests for EvidenceWindow so
// the requests around the incident survive tail sampling. A nil sser
// means a total-scope anomaly: every slice is evidence.
func (m *Monitor) markEvidence(sser *sliceSeries, now time.Time) {
	col := m.tracer.Collector()
	until := now.Add(m.cfg.EvidenceWindow).UnixNano()
	mark := func(s *sliceSeries) {
		s.markUntil.Store(until)
		if tid := s.lastTrace.Load(); tid != 0 {
			col.MarkInteresting(trace.TraceID(tid))
		}
	}
	if sser != nil {
		mark(sser)
		return
	}
	for _, s := range m.all {
		mark(s)
	}
}

// localizeLocked runs diagnosis.Localize over the rolling window for the
// anomaly's span. It needs at least one full seasonal period of same-
// phase history before the baseline is meaningful; until then the
// anomaly stays unlocalized and the periodic sweep retries.
func (m *Monitor) localizeLocked(a *Anomaly) {
	start := a.startTick - m.store.Start()
	if start < 0 {
		start = 0
	}
	if start < m.cfg.DiagnosisPeriod {
		return
	}
	end := m.tick - m.store.Start() + 1
	ev := diagnosis.Event{Start: start, End: end}
	loc := diagnosis.Localize(m.store, ev, diagnosis.LocalizeConfig{
		Period:       m.cfg.DiagnosisPeriod,
		PinThreshold: m.cfg.PinThreshold,
	})
	if len(loc.Pinned) == 0 {
		return
	}
	if a.Localization == "" {
		m.metrics.Localized.Inc()
	}
	a.Localization = loc.String()
	a.Pinned = loc.Pinned
	a.Coverage = loc.Coverage
}

// sweepLocked is the periodic diagnosis pass: re-run the offline
// detector over the rolling total series (the live rendition of the
// Figure 5 confirmation) and re-localize active anomalies, whose
// attribution sharpens as the dip extends.
func (m *Monitor) sweepLocked() {
	m.diagRuns++
	m.diagLast = diagnosis.Detect(m.store.Total(), diagnosis.DetectConfig{
		Ratio:  m.cfg.DiagnosisRatio,
		MinLen: m.cfg.SustainBuckets,
		Period: m.cfg.DiagnosisPeriod,
	})
	for _, a := range m.active {
		m.localizeLocked(a)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
