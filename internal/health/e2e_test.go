package health_test

// End-to-end test of the live health pipeline over real TCP: a phiwire
// server fronts a phi.Server with a health monitor attached, a
// phi-load-style workload drives structured grid paths over the wire,
// and mid-run one slice of the workload goes dark — the fault mode
// phi-load injects with -fault-match. The monitor must detect the dip
// within the configured window, localize it to the suppressed slice,
// surface it at /debug/health, emit a structured alert record, and
// bump the telemetry counters; when the slice comes back, the anomaly
// must resolve.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/sim"
	"repro/internal/telemetry"
	tlog "repro/internal/trace/log"
)

// syncBuffer is a goroutine-safe log sink (the monitor's rotation
// goroutine writes alerts concurrently with test reads).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// e2eSnapshot decodes the /debug/health fields the test asserts on.
type e2eSnapshot struct {
	Status string `json:"status"`
	Active []struct {
		Scope        string `json:"scope"`
		Depth        float64
		Localization string            `json:"localization"`
		Pinned       map[string]string `json:"pinned"`
	} `json:"active_anomalies"`
	Recent []struct {
		Scope string `json:"scope"`
	} `json:"recent_anomalies"`
}

func getHealth(t *testing.T, url string) e2eSnapshot {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var snap e2eSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /debug/health: %v", err)
	}
	return snap
}

func TestEndToEndFaultDetectionOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second TCP e2e")
	}

	const (
		bucket   = 100 * time.Millisecond
		badSlice = "svc-0/isp-1/metro-1"
	)

	var logBuf syncBuffer
	logger := tlog.New(&logBuf, tlog.LevelInfo)
	reg := telemetry.NewRegistry()

	mon := health.NewMonitor(health.Config{
		BucketDur:       bucket,
		Buckets:         64,
		WarmupBuckets:   5,
		SustainBuckets:  2,
		RecoverBuckets:  2,
		DiagnosisPeriod: 6,
		DiagnoseEvery:   2,
	})
	mon.SetLogger(logger.Component("health"))
	mon.SetMetrics(health.NewMetrics(reg))
	stopMon := mon.Start()
	defer stopMon()

	backend := phi.NewServer(
		func() sim.Time { return sim.Time(time.Now().UnixNano()) },
		phi.ServerConfig{},
	)
	backend.SetHealth(mon)
	srv := phiwire.NewServer(backend, nil)
	srv.SetHealth(mon)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	defer srv.Close()

	ms, err := telemetry.Serve("127.0.0.1:0", reg,
		telemetry.Endpoint{Path: "/debug/health", Handler: mon.Handler()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	healthURL := fmt.Sprintf("http://%s/debug/health", ms.Addr())

	// phi-load-style workload: one worker per slice of a 1x2x2 grid,
	// each running the full connection lifecycle over its own TCP
	// connection. suppress[i] is the fault switch for worker i.
	slices := []string{
		"svc-0/isp-0/metro-0", "svc-0/isp-0/metro-1",
		"svc-0/isp-1/metro-0", badSlice,
	}
	var suppress [4]atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, sl := range slices {
		wg.Add(1)
		go func(i int, sl string) {
			defer wg.Done()
			cl := phiwire.Dial(ln.Addr().String(), 2*time.Second)
			defer cl.Close()
			path := phi.PathKey(sl + "/p-" + fmt.Sprint(i))
			rep := phi.Report{
				Bytes: 1 << 16, Duration: 50 * sim.Millisecond,
				AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond,
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if suppress[i].Load() {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if _, err := cl.Lookup(path); err != nil {
					return // listener closed under us; test is ending
				}
				if err := cl.ReportStart(path); err != nil {
					return
				}
				if err := cl.ReportEnd(path, rep); err != nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i, sl)
	}
	defer func() { close(stop); wg.Wait() }()

	// Warm the baselines well past warmup and the diagnosis period.
	time.Sleep(15 * bucket)
	if snap := getHealth(t, healthURL); len(snap.Active) != 0 {
		t.Fatalf("anomalies before the fault: %+v", snap.Active)
	}

	// Inject the fault: the badSlice worker goes silent.
	suppress[3].Store(true)
	faultAt := time.Now()

	// Detection must land within the configured window (warmup is done,
	// so SustainBuckets consecutive bad buckets is the floor); allow a
	// generous multiple for scheduler noise under -race.
	deadline := time.After(40 * bucket)
	var detected e2eSnapshot
detect:
	for {
		select {
		case <-deadline:
			t.Fatalf("no anomaly for %s within 40 buckets; last snapshot: %+v",
				badSlice, getHealth(t, healthURL))
		case <-time.After(bucket / 2):
			snap := getHealth(t, healthURL)
			for _, a := range snap.Active {
				if a.Scope == badSlice {
					detected = snap
					break detect
				}
			}
		}
	}
	t.Logf("detected %s after %v", badSlice, time.Since(faultAt))

	if detected.Status != health.StatusAnomalous {
		t.Fatalf("status = %q during the outage, want %q", detected.Status, health.StatusAnomalous)
	}
	// Only the suppressed slice should be implicated.
	for _, a := range detected.Active {
		if a.Scope != badSlice && a.Scope != "total" {
			t.Errorf("false positive: anomaly on healthy slice %q", a.Scope)
		}
	}

	// Localization: the pins must implicate the suppressed ISP/metro
	// pair. It can sharpen on a later sweep, so poll briefly.
	localized := false
	for i := 0; i < 20 && !localized; i++ {
		snap := getHealth(t, healthURL)
		for _, a := range snap.Active {
			if a.Scope == badSlice && a.Localization != "" {
				if !strings.Contains(a.Localization, "isp-1") || !strings.Contains(a.Localization, "metro-1") {
					t.Fatalf("localization %q does not implicate isp-1/metro-1", a.Localization)
				}
				localized = true
			}
		}
		if !localized {
			time.Sleep(bucket)
		}
	}
	if !localized {
		t.Fatal("anomaly never localized")
	}

	// The alert must exist as a structured log record ...
	if logs := logBuf.String(); !strings.Contains(logs, "anomaly detected") || !strings.Contains(logs, badSlice) {
		t.Fatalf("no structured alert for %s in logs:\n%s", badSlice, logs)
	}
	// ... and as a telemetry counter on /metrics.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ms.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "phi_health_anomalies_total") ||
		strings.Contains(string(metrics), "phi_health_anomalies_total 0") {
		t.Fatalf("anomaly counter not incremented:\n%s", metrics)
	}

	// Lift the fault: the anomaly must resolve and move to the recent
	// ring once RecoverBuckets of healthy traffic flow again.
	suppress[3].Store(false)
	deadline = time.After(40 * bucket)
	for {
		snap := getHealth(t, healthURL)
		still := false
		for _, a := range snap.Active {
			if a.Scope == badSlice {
				still = true
			}
		}
		if !still {
			recovered := false
			for _, a := range snap.Recent {
				if a.Scope == badSlice {
					recovered = true
				}
			}
			if !recovered {
				t.Fatalf("anomaly cleared but missing from the recent ring: %+v", snap)
			}
			if logs := logBuf.String(); !strings.Contains(logs, "anomaly resolved") {
				t.Fatalf("no resolution record in logs:\n%s", logs)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("anomaly never resolved after the fault lifted: %+v", snap)
		case <-time.After(bucket / 2):
		}
	}
}
