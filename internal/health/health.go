// Package health is the live health-monitoring pipeline over the Phi
// serving path: it ingests data-path events (lookups, reports, routing
// decisions, connection churn), maintains bounded windowed rollups per
// workload slice and per shard, and runs online detectors over those
// windows — an EWMA/z-score volume-dip detector per slice plus the
// offline diagnosis machinery (diagnosis.Detect / diagnosis.Localize)
// re-run continuously on the rolling window, so the Figure 5 outage
// story (detect an unreachability event from a volume dip, localize it
// to a service/ISP/metro slice) plays out live against real traffic.
//
// Detections are first-class alert events: they are logged as structured
// records through internal/trace/log, counted and gauged in the
// telemetry registry, and they mark the affected slice's traces
// "interesting" so tail-based retention keeps the evidence around the
// incident. A /debug/health endpoint (see Handler) snapshots the whole
// picture: overall status, per-shard rates and breaker state, top-K hot
// slices, and active and recent anomalies with their localization.
//
// The ingestion side follows the repo's hot-path rules (the same ones
// internal/telemetry obeys): every Record method on a nil *Monitor is a
// no-op, so uninstrumented deployments pay one nil check; on a live
// monitor an event is one cache-friendly map lookup plus one atomic
// add — no time arithmetic, no locks, no allocation. All bucketing
// happens on a single rotation goroutine that fires once per BucketDur,
// swaps the current-bucket atomics to zero, feeds the sliding
// diagnosis.Store, and runs the detectors.
package health

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

// RoutingEvent classifies a frontend routing decision worth counting.
type RoutingEvent uint8

const (
	// RouteRetry: a shard call failed and was retried on the same owner.
	RouteRetry RoutingEvent = iota
	// RouteFailover: a call moved to the fallback shard.
	RouteFailover
	// RouteDegraded: the frontend answered degraded (synthesized context).
	RouteDegraded
	// RouteBreakerOpen: a call skipped a shard because its breaker was open.
	RouteBreakerOpen

	numRoutingEvents
)

func (e RoutingEvent) String() string {
	switch e {
	case RouteRetry:
		return "retry"
	case RouteFailover:
		return "failover"
	case RouteDegraded:
		return "degraded"
	case RouteBreakerOpen:
		return "breaker_open"
	default:
		return "unknown"
	}
}

// Slicer maps a path key to the diagnosis slice it belongs to. The
// monitor aggregates per-slice, not per-path, so cardinality is bounded
// by the workload's slice structure rather than its path space.
type Slicer func(path string) diagnosis.Slice

// DefaultSlicer interprets a path key's "/"-separated components as
// service/ISP/metro (the structured keys phi-load's -grid mode emits,
// e.g. "svc-0/isp-1/metro-2/p-3"). Unstructured keys become a
// service-only slice, which still participates in detection.
func DefaultSlicer(path string) diagnosis.Slice {
	var sl diagnosis.Slice
	parts := strings.SplitN(path, "/", 4)
	sl.Service = parts[0]
	if len(parts) > 1 {
		sl.ISP = parts[1]
	}
	if len(parts) > 2 {
		sl.Metro = parts[2]
	}
	return sl
}

// sliceKey renders the slice as a compact scope label.
func sliceKey(sl diagnosis.Slice) string {
	k := sl.Service
	if sl.ISP != "" {
		k += "/" + sl.ISP
	}
	if sl.Metro != "" {
		k += "/" + sl.Metro
	}
	return k
}

// Config tunes the monitor. The zero value is usable: one-second
// buckets, a two-minute window, and detector thresholds sized for the
// load generator's default rates.
type Config struct {
	// BucketDur is the rollup bucket width (default 1s).
	BucketDur time.Duration
	// Buckets is the window length in buckets (default 120).
	Buckets int
	// Shards is the number of backend shards to track (0: no shard rollups).
	Shards int
	// Slicer maps path keys to slices (default DefaultSlicer).
	Slicer Slicer

	// Alpha is the EWMA smoothing factor for per-slice baselines
	// (default 0.2).
	Alpha float64
	// ZThresh is the z-score a dip must exceed, with a Poisson
	// (sqrt-of-mean) noise floor on sigma (default 3).
	ZThresh float64
	// DipRatio flags a bucket when observed < DipRatio * baseline
	// (default 0.5).
	DipRatio float64
	// RecoverRatio closes an anomaly once observed >= RecoverRatio *
	// baseline for RecoverBuckets buckets (default 0.8).
	RecoverRatio float64
	// MinRate (events/sec) is the baseline floor below which a slice is
	// too quiet to alarm on (default 1).
	MinRate float64
	// WarmupBuckets is how many buckets a baseline must absorb before
	// its detector can fire (default 10).
	WarmupBuckets int
	// SustainBuckets is how many consecutive anomalous buckets open an
	// anomaly (default 3).
	SustainBuckets int
	// RecoverBuckets is how many consecutive recovered buckets close one
	// (default 2).
	RecoverBuckets int

	// DiagnosisPeriod is the seasonal period, in buckets, handed to
	// diagnosis.Detect/Localize on the rolling window (default
	// Buckets/6, min 2).
	DiagnosisPeriod int
	// DiagnosisRatio is diagnosis.DetectConfig.Ratio for the rolling
	// confirmation sweep (default 0.7).
	DiagnosisRatio float64
	// PinThreshold is the localization pin threshold; live windows are
	// noisier than the offline experiment, so the default is 0.6.
	PinThreshold float64
	// DiagnoseEvery re-runs the diagnosis sweep and re-localizes active
	// anomalies every N rotations (default 5).
	DiagnoseEvery int

	// EvidenceWindow is how long after an anomaly opens the affected
	// slice's traced requests keep being marked interesting (default 30s).
	EvidenceWindow time.Duration
	// TopK is how many hot slices a snapshot lists (default 10).
	TopK int
	// RecentAnomalies is how many resolved anomalies are retained
	// (default 32).
	RecentAnomalies int

	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.BucketDur <= 0 {
		c.BucketDur = time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 120
	}
	if c.Slicer == nil {
		c.Slicer = DefaultSlicer
	}
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.ZThresh == 0 {
		c.ZThresh = 3
	}
	if c.DipRatio == 0 {
		c.DipRatio = 0.5
	}
	if c.RecoverRatio == 0 {
		c.RecoverRatio = 0.8
	}
	if c.MinRate == 0 {
		c.MinRate = 1
	}
	if c.WarmupBuckets == 0 {
		c.WarmupBuckets = 10
	}
	if c.SustainBuckets == 0 {
		c.SustainBuckets = 3
	}
	if c.RecoverBuckets == 0 {
		c.RecoverBuckets = 2
	}
	if c.DiagnosisPeriod == 0 {
		c.DiagnosisPeriod = c.Buckets / 6
		if c.DiagnosisPeriod < 2 {
			c.DiagnosisPeriod = 2
		}
	}
	if c.DiagnosisRatio == 0 {
		c.DiagnosisRatio = 0.7
	}
	if c.PinThreshold == 0 {
		c.PinThreshold = 0.6
	}
	if c.DiagnoseEvery == 0 {
		c.DiagnoseEvery = 5
	}
	if c.EvidenceWindow == 0 {
		c.EvidenceWindow = 30 * time.Second
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	if c.RecentAnomalies == 0 {
		c.RecentAnomalies = 32
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// sliceSeries is one slice's live state: a current-bucket atomic hit by
// the ingestion hot path, and detector state owned by the rotation
// goroutine (read under mu for snapshots).
type sliceSeries struct {
	key   string
	slice diagnosis.Slice

	cur       atomic.Int64  // events this bucket (hot path)
	lastTrace atomic.Uint64 // most recent trace ID seen on this slice
	markUntil atomic.Int64  // unix nanos; traces before this are evidence

	det  detector // rotation goroutine only
	rate float64  // last completed bucket, events/sec (under mu)
}

// shardSeries tracks one backend shard's call volume and error volume.
type shardSeries struct {
	calls atomic.Int64 // this bucket
	errs  atomic.Int64

	callsTotal atomic.Uint64
	errsTotal  atomic.Uint64

	rate    float64 // last bucket, calls/sec (under mu)
	errRate float64
}

// detector is the per-scope EWMA/z-score streaming dip detector. All
// fields are owned by the rotation goroutine.
type detector struct {
	mean     float64 // EWMA of per-bucket counts
	variance float64 // EWMA of squared deviations
	warm     int     // buckets absorbed into the baseline
	badRun   int     // consecutive anomalous buckets
	goodRun  int     // consecutive recovered buckets (while active)
	active   *Anomaly
}

// Anomaly is one detected volume-dip episode, from detection until
// RecoverBuckets of recovery, then retained in the recent ring.
type Anomaly struct {
	ID        uint64    `json:"id"`
	Scope     string    `json:"scope"` // "total" or a slice key
	StartedAt time.Time `json:"started_at"`
	EndedAt   time.Time `json:"ended_at,omitempty"`
	Active    bool      `json:"active"`

	// BaselineRate is the frozen pre-dip EWMA, events/sec.
	BaselineRate float64 `json:"baseline_rate_per_sec"`
	// ObservedRate is the most recent bucket's rate, events/sec.
	ObservedRate float64 `json:"observed_rate_per_sec"`
	// Depth is the fractional deficit (1 = blackout), updated while active.
	Depth float64 `json:"depth"`

	// Localization is the diagnosis.Localize verdict over the rolling
	// window ("" until enough same-phase history exists).
	Localization string             `json:"localization,omitempty"`
	Pinned       map[string]string  `json:"pinned,omitempty"`
	Coverage     map[string]float64 `json:"coverage,omitempty"`

	startTick int // absolute bucket index of the first anomalous bucket
}

// Monitor is the streaming health monitor. The zero value is not usable;
// construct with NewMonitor. All Record methods are safe on a nil
// receiver and safe for concurrent use.
type Monitor struct {
	cfg Config

	log     *tlog.Logger
	tracer  *trace.Tracer
	metrics *Metrics

	// shardStatus reports per-shard breaker state (true = down), set by
	// the cluster frontend.
	shardStatus atomic.Pointer[func() []bool]

	// snapshotAges reports per-shard seconds since the last successful
	// snapshot (-1 = never), set by the cluster's snapshot machinery so
	// staleness is visible at /debug/health before a crash proves it.
	snapshotAges atomic.Pointer[func() []float64]

	// qualitySource reports the context-quality layer's verdict: whether
	// served context has degraded (coverage collapse, accuracy blowout),
	// a short reason, and the baseline/observed values behind the call.
	// Polled once per rotation; wired to quality.Tracker.HealthCheck.
	qualitySource atomic.Pointer[func() (degraded bool, reason string, baseline, observed float64)]

	// profileTrigger, when set, is invoked (on its own goroutine, with
	// the anomaly scope as the reason) each time an anomaly is promoted
	// — the hook the obs.ProfileRing hangs off so a dip's CPU/heap
	// profile is captured while the dip is still happening.
	profileTrigger atomic.Pointer[func(reason string)]

	startedAt time.Time

	// Hot-path ingestion state.
	lookups atomic.Uint64
	reports atomic.Uint64
	conns   atomic.Int64
	routing [numRoutingEvents]atomic.Uint64
	paths   sync.Map // path string -> *sliceSeries (memoized slicer)
	slices  sync.Map // slice key string -> *sliceSeries
	shards  []shardSeries

	// Rotation + snapshot state, guarded by mu. The rotation goroutine
	// is the only writer; Snapshot and Handler read.
	mu        sync.Mutex
	store     *diagnosis.Store
	all       []*sliceSeries
	tick      int // absolute index of the bucket being closed next
	rotations uint64
	totalDet  detector
	totalRate float64
	nextID    uint64
	active    []*Anomaly
	recent    []*Anomaly
	// qualityDet only carries the active context-quality anomaly (the
	// open/close decision comes from the installed quality source, not
	// the EWMA machinery), so close handling is shared with the volume
	// detectors.
	qualityDet detector
	diagRuns   uint64
	diagLast   []diagnosis.Event // last confirmation sweep over Total()
}

// NewMonitor builds a monitor with the given configuration. Call Start
// to begin rotation, and the Set* methods (before Start) to wire alert
// fan-out.
func NewMonitor(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:       cfg,
		metrics:   &Metrics{}, // nil handles no-op until SetMetrics
		startedAt: cfg.Clock(),
		shards:    make([]shardSeries, cfg.Shards),
		store:     diagnosis.NewStore(cfg.Buckets),
	}
}

// SetLogger directs alert records to l (component "health" is the
// caller's choice; the monitor logs as given).
func (m *Monitor) SetLogger(l *tlog.Logger) {
	if m == nil {
		return
	}
	m.log = l
}

// SetTracer wires the tracer whose collector receives evidence marks.
func (m *Monitor) SetTracer(t *trace.Tracer) {
	if m == nil {
		return
	}
	m.tracer = t
}

// SetMetrics wires telemetry counters/gauges for alert fan-out.
func (m *Monitor) SetMetrics(hm *Metrics) {
	if m == nil || hm == nil {
		return
	}
	m.metrics = hm
}

// SetShardStatus installs a callback reporting per-shard breaker state
// (true = down). The cluster frontend installs its ShardDown view; safe
// to call at any time, including after Start.
func (m *Monitor) SetShardStatus(fn func() []bool) {
	if m == nil || fn == nil {
		return
	}
	m.shardStatus.Store(&fn)
}

// SetSnapshotAges installs the per-shard snapshot-age source: seconds
// since each shard's last successful snapshot, -1 for never. Safe on a
// nil monitor. Typically wired to cluster.Cluster.SnapshotAges (or the
// fleet equivalent) when periodic snapshotting is on.
func (m *Monitor) SetSnapshotAges(fn func() []float64) {
	if m == nil || fn == nil {
		return
	}
	m.snapshotAges.Store(&fn)
}

// SetQualitySource installs the context-quality verdict source, polled
// once per rotation. A degraded verdict (coverage drop, accuracy
// collapse) opens a "context-quality/<reason>" anomaly with full
// evidence retention; the anomaly closes when the source reports
// healthy again. Wire to quality.Tracker.HealthCheck. Safe on a nil
// monitor; safe to call at any time, including after Start.
func (m *Monitor) SetQualitySource(fn func() (degraded bool, reason string, baseline, observed float64)) {
	if m == nil || fn == nil {
		return
	}
	m.qualitySource.Store(&fn)
}

// SetProfileTrigger installs a callback fired on anomaly promotion
// (asynchronously; the detector never blocks on a capture). Wire it to
// obs.ProfileRing.Trigger or equivalent. Safe on a nil monitor; safe to
// call at any time, including after Start.
func (m *Monitor) SetProfileTrigger(fn func(reason string)) {
	if m == nil || fn == nil {
		return
	}
	m.profileTrigger.Store(&fn)
}

// Start launches the rotation goroutine and returns an idempotent stop
// function. Safe on a nil monitor (returns a no-op).
func (m *Monitor) Start() (stop func()) {
	if m == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(m.cfg.BucketDur)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				m.rotate()
			case <-stopCh:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
	}
}

// RecordLookup ingests one context lookup for path.
func (m *Monitor) RecordLookup(path string) {
	if m == nil {
		return
	}
	m.lookups.Add(1)
	m.seriesFor(path).cur.Add(1)
	m.metrics.Events.Inc()
}

// RecordReport ingests one usage report for path.
func (m *Monitor) RecordReport(path string) {
	if m == nil {
		return
	}
	m.reports.Add(1)
	m.seriesFor(path).cur.Add(1)
	m.metrics.Events.Inc()
}

// RecordTrace notes that a traced request for path carried trace ID tid.
// The ID is retained as the slice's evidence pointer; while the slice is
// inside an anomaly's evidence window the trace is marked interesting so
// tail-based retention keeps it.
func (m *Monitor) RecordTrace(path string, tid uint64) {
	if m == nil || tid == 0 {
		return
	}
	s := m.seriesFor(path)
	s.lastTrace.Store(tid)
	if until := s.markUntil.Load(); until != 0 && m.cfg.Clock().UnixNano() < until {
		m.tracer.Collector().MarkInteresting(trace.TraceID(tid))
	}
}

// RecordShardCall ingests one backend shard call and whether it failed.
func (m *Monitor) RecordShardCall(shard int, failed bool) {
	if m == nil || shard < 0 || shard >= len(m.shards) {
		return
	}
	s := &m.shards[shard]
	s.calls.Add(1)
	s.callsTotal.Add(1)
	if failed {
		s.errs.Add(1)
		s.errsTotal.Add(1)
	}
}

// RecordRouting counts one frontend routing event.
func (m *Monitor) RecordRouting(ev RoutingEvent) {
	if m == nil || ev >= numRoutingEvents {
		return
	}
	m.routing[ev].Add(1)
}

// RecordConn tracks connection churn (+1 on accept, -1 on close).
func (m *Monitor) RecordConn(delta int) {
	if m == nil {
		return
	}
	m.conns.Add(int64(delta))
}

// seriesFor resolves the slice series for a path, memoizing the slicer
// verdict so the steady-state hot path is one sync.Map load plus one
// atomic add.
func (m *Monitor) seriesFor(path string) *sliceSeries {
	if v, ok := m.paths.Load(path); ok {
		return v.(*sliceSeries)
	}
	return m.seriesForSlow(path)
}

func (m *Monitor) seriesForSlow(path string) *sliceSeries {
	sl := m.cfg.Slicer(path)
	key := sliceKey(sl)
	var s *sliceSeries
	if v, ok := m.slices.Load(key); ok {
		s = v.(*sliceSeries)
	} else {
		m.mu.Lock()
		if v, ok := m.slices.Load(key); ok {
			s = v.(*sliceSeries)
		} else {
			s = &sliceSeries{key: key, slice: sl}
			m.slices.Store(key, s)
			m.all = append(m.all, s)
			m.metrics.Slices.Set(float64(len(m.all)))
		}
		m.mu.Unlock()
	}
	m.paths.Store(path, s)
	return s
}

// bucketSec is the bucket width in seconds (rate denominators).
func (m *Monitor) bucketSec() float64 { return m.cfg.BucketDur.Seconds() }

// sigma returns the detector's noise estimate with a Poisson floor:
// counting noise alone makes sigma at least sqrt(mean), so thin slices
// do not alarm on shot noise even before the variance EWMA warms up.
func (d *detector) sigma() float64 {
	return math.Sqrt(math.Max(d.variance, d.mean))
}
