package health

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

// testConfig is a small, fast window tuned so detection happens within
// a handful of synthetic buckets.
func testConfig(clock func() time.Time) Config {
	return Config{
		BucketDur:       time.Second,
		Buckets:         48,
		Shards:          2,
		WarmupBuckets:   6,
		SustainBuckets:  3,
		RecoverBuckets:  2,
		DiagnosisPeriod: 8,
		DiagnoseEvery:   4,
		Clock:           clock,
	}
}

// grid feeds one bucket of traffic: perBucket events on each of the
// 2x2 (isp, metro) slices of service svc-0, minus the suppressed set.
func gridBucket(m *Monitor, perBucket int, suppress map[string]bool) {
	for isp := 0; isp < 2; isp++ {
		for metro := 0; metro < 2; metro++ {
			key := "svc-0/isp-" + string(rune('0'+isp)) + "/metro-" + string(rune('0'+metro))
			if suppress[key] {
				continue
			}
			path := key + "/p-0"
			for i := 0; i < perBucket; i++ {
				m.RecordLookup(path)
			}
		}
	}
}

func TestNilMonitorIsNoOp(t *testing.T) {
	var m *Monitor
	m.RecordLookup("a/b/c")
	m.RecordReport("a/b/c")
	m.RecordTrace("a/b/c", 7)
	m.RecordShardCall(0, true)
	m.RecordRouting(RouteFailover)
	m.RecordConn(1)
	m.SetLogger(nil)
	m.SetTracer(nil)
	m.SetMetrics(nil)
	m.SetShardStatus(func() []bool { return nil })
	m.rotate()
	stop := m.Start()
	stop()
	if s := m.Snapshot(); s.Status != "" {
		t.Fatalf("nil snapshot status = %q", s.Status)
	}
	// Handler on nil serves a zero snapshot rather than panicking.
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if rec.Code != 200 {
		t.Fatalf("nil handler status = %d", rec.Code)
	}
}

// TestDetectLocalizeRecover drives the full anomaly lifecycle with a
// synthetic clock: steady traffic on a 2x2 grid, one slice suppressed,
// and asserts detection scope, structured alert log, telemetry
// counters, localization pins, evidence marking, and recovery.
func TestDetectLocalizeRecover(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	m := NewMonitor(testConfig(clock))

	var logBuf bytes.Buffer
	m.SetLogger(tlog.New(&logBuf, tlog.LevelInfo, tlog.WithClock(clock)).Component("health"))
	reg := telemetry.NewRegistry()
	hm := NewMetrics(reg)
	m.SetMetrics(hm)
	m.SetShardStatus(func() []bool { return []bool{false, true} })
	profileReasons := make(chan string, 4)
	m.SetProfileTrigger(func(reason string) { profileReasons <- reason })

	step := func(perBucket int, suppress map[string]bool) {
		gridBucket(m, perBucket, suppress)
		now = now.Add(time.Second)
		m.rotate()
	}

	// Warm up: 16 clean buckets (past warmup and one diagnosis period).
	for i := 0; i < 16; i++ {
		step(20, nil)
	}
	snap := m.Snapshot()
	if snap.Status != StatusDegraded { // shard 1 breaker reported open
		t.Fatalf("status after warmup = %q, want %q (breaker open)", snap.Status, StatusDegraded)
	}
	if snap.Window.SlicesTracked != 4 {
		t.Fatalf("slices tracked = %d, want 4", snap.Window.SlicesTracked)
	}

	// Suppress one slice. SustainBuckets=3, so the third empty bucket
	// opens the anomaly.
	bad := map[string]bool{"svc-0/isp-1/metro-1": true}
	faultStart := now
	for i := 0; i < 3; i++ {
		step(20, bad)
	}

	snap = m.Snapshot()
	if snap.Status != StatusAnomalous {
		t.Fatalf("status during fault = %q, want %q", snap.Status, StatusAnomalous)
	}
	if len(snap.Active) != 1 {
		t.Fatalf("active anomalies = %d, want 1", len(snap.Active))
	}
	a := snap.Active[0]
	if a.Scope != "svc-0/isp-1/metro-1" {
		t.Fatalf("anomaly scope = %q", a.Scope)
	}
	if a.Depth < 0.9 {
		t.Fatalf("anomaly depth = %v, want ~1 (blackout)", a.Depth)
	}
	if got := a.StartedAt; got.Before(faultStart) {
		t.Fatalf("anomaly started %v before fault injection %v", got, faultStart)
	}
	if a.Pinned["isp"] != "isp-1" || a.Pinned["metro"] != "metro-1" {
		t.Fatalf("localization pinned = %v, want isp-1/metro-1", a.Pinned)
	}
	if hm.Anomalies.Value() != 1 || hm.Localized.Value() != 1 {
		t.Fatalf("counters: anomalies=%d localized=%d, want 1/1",
			hm.Anomalies.Value(), hm.Localized.Value())
	}
	if hm.Active.Value() != 1 {
		t.Fatalf("active gauge = %v, want 1", hm.Active.Value())
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "anomaly detected") ||
		!strings.Contains(logged, "scope=svc-0/isp-1/metro-1") {
		t.Fatalf("alert log record missing:\n%s", logged)
	}
	// Promotion must have fired the profile-capture hook (async) with
	// the anomaly scope as the reason.
	select {
	case reason := <-profileReasons:
		if !strings.Contains(reason, "svc-0/isp-1/metro-1") {
			t.Fatalf("profile trigger reason = %q, want anomaly scope", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("profile trigger never fired on anomaly promotion")
	}

	// Keep the fault going through a diagnosis sweep: the offline
	// detector should confirm an event on the rolling total series.
	for i := 0; i < 5; i++ {
		step(20, bad)
	}
	snap = m.Snapshot()
	if snap.Diagnosis.Runs == 0 {
		t.Fatalf("diagnosis sweep never ran")
	}

	// Recovery: RecoverBuckets=2 clean buckets close the anomaly.
	for i := 0; i < 2; i++ {
		step(20, nil)
	}
	snap = m.Snapshot()
	if len(snap.Active) != 0 {
		t.Fatalf("anomaly still active after recovery: %+v", snap.Active)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Active || snap.Recent[0].EndedAt.IsZero() {
		t.Fatalf("recent anomalies = %+v, want one resolved", snap.Recent)
	}
	if hm.Recoveries.Value() != 1 {
		t.Fatalf("recoveries counter = %d, want 1", hm.Recoveries.Value())
	}
	if !strings.Contains(logBuf.String(), "anomaly resolved") {
		t.Fatalf("resolution log record missing:\n%s", logBuf.String())
	}
}

// TestBaselineFreezesDuringDip pins the detector property that makes
// long outages detectable: suspect buckets must not be absorbed into
// the EWMA, or the baseline would chase the fault down and self-clear.
func TestBaselineFreezesDuringDip(t *testing.T) {
	now := time.Unix(1700000000, 0)
	m := NewMonitor(testConfig(func() time.Time { return now }))
	path := "svc-0/isp-0/metro-0/p-0"
	step := func(n int) {
		for i := 0; i < n; i++ {
			m.RecordLookup(path)
		}
		now = now.Add(time.Second)
		m.rotate()
	}
	for i := 0; i < 10; i++ {
		step(50)
	}
	m.mu.Lock()
	before := m.all[0].det.mean
	m.mu.Unlock()
	for i := 0; i < 20; i++ {
		step(0) // blackout for much longer than the sustain window
	}
	m.mu.Lock()
	after := m.all[0].det.mean
	active := m.all[0].det.active
	m.mu.Unlock()
	if after != before {
		t.Fatalf("baseline drifted during dip: %v -> %v", before, after)
	}
	if active == nil {
		t.Fatalf("long dip not flagged as active anomaly")
	}
}

// TestEvidenceMarking checks the trace fan-out: inside an anomaly's
// evidence window, a traced request on the affected slice is marked
// interesting, so the collector retains it at root end.
func TestEvidenceMarking(t *testing.T) {
	now := time.Unix(1700000000, 0)
	m := NewMonitor(testConfig(func() time.Time { return now }))
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1 << 20})
	m.SetTracer(tracer)

	path := "svc-0/isp-0/metro-0/p-0"
	s := m.seriesFor(path)
	s.markUntil.Store(now.Add(time.Minute).UnixNano())

	span := tracer.Start(trace.SpanContext{}, trace.Name("lifecycle"))
	tid := uint64(span.Context().Trace)
	m.RecordTrace(path, tid)
	span.End(nil)

	for _, tr := range tracer.Collector().Errors() {
		if tr.Kept == "error" {
			return // retained via the interesting mark
		}
	}
	t.Fatalf("evidence trace not retained by collector")
}

// TestQualityAnomalyLifecycle drives the context-quality hook: a
// degraded verdict from the installed source opens a context-quality
// anomaly (counted, evidence-retained, profile-captured, logged), the
// verdict's values ride in the anomaly verbatim, and a healthy verdict
// closes it into the recent ring.
func TestQualityAnomalyLifecycle(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	m := NewMonitor(testConfig(clock))

	var logBuf bytes.Buffer
	m.SetLogger(tlog.New(&logBuf, tlog.LevelInfo, tlog.WithClock(clock)).Component("health"))
	reg := telemetry.NewRegistry()
	hm := NewMetrics(reg)
	m.SetMetrics(hm)
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1 << 20})
	m.SetTracer(tracer)
	profileReasons := make(chan string, 4)
	m.SetProfileTrigger(func(reason string) { profileReasons <- reason })

	degraded := false
	m.SetQualitySource(func() (bool, string, float64, float64) {
		if degraded {
			return true, "coverage-drop", 0.5, 0.1
		}
		return false, "", 0.5, 0.9
	})

	step := func() {
		gridBucket(m, 20, nil)
		now = now.Add(time.Second)
		m.rotate()
	}
	for i := 0; i < 8; i++ {
		step() // healthy verdicts must not open anything
	}
	if snap := m.Snapshot(); len(snap.Active) != 0 {
		t.Fatalf("healthy quality verdicts opened anomalies: %+v", snap.Active)
	}

	degraded = true
	step()
	snap := m.Snapshot()
	if snap.Status != StatusAnomalous || len(snap.Active) != 1 {
		t.Fatalf("status=%q active=%d after degraded verdict, want anomalous/1",
			snap.Status, len(snap.Active))
	}
	a := snap.Active[0]
	if a.Scope != "context-quality/coverage-drop" {
		t.Fatalf("anomaly scope = %q", a.Scope)
	}
	if a.BaselineRate != 0.5 || a.ObservedRate != 0.1 {
		t.Fatalf("anomaly carries %v/%v, want the verdict's 0.5/0.1",
			a.BaselineRate, a.ObservedRate)
	}
	if a.Depth < 0.7 {
		t.Fatalf("anomaly depth = %v, want ~0.8", a.Depth)
	}
	if hm.Anomalies.Value() != 1 || hm.Active.Value() != 1 {
		t.Fatalf("counters: anomalies=%d active=%v, want 1/1",
			hm.Anomalies.Value(), hm.Active.Value())
	}
	if !strings.Contains(logBuf.String(), "context quality degraded") {
		t.Fatalf("alert log record missing:\n%s", logBuf.String())
	}
	select {
	case reason := <-profileReasons:
		if !strings.Contains(reason, "context-quality") {
			t.Fatalf("profile trigger reason = %q", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("profile trigger never fired on quality anomaly")
	}
	// Evidence retention is fleet-wide for a quality anomaly: every
	// tracked slice must be marking its traces for the evidence window.
	m.mu.Lock()
	for _, s := range m.all {
		if s.markUntil.Load() == 0 {
			m.mu.Unlock()
			t.Fatalf("slice %q not marked for evidence retention", s.key)
		}
	}
	m.mu.Unlock()

	// A still-degraded source keeps the same anomaly open (no duplicate).
	step()
	if snap := m.Snapshot(); len(snap.Active) != 1 || hm.Anomalies.Value() != 1 {
		t.Fatalf("degraded steady state re-opened anomalies: active=%d counted=%d",
			len(snap.Active), hm.Anomalies.Value())
	}

	degraded = false
	step()
	snap = m.Snapshot()
	if len(snap.Active) != 0 {
		t.Fatalf("quality anomaly still active after recovery: %+v", snap.Active)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Active || snap.Recent[0].EndedAt.IsZero() {
		t.Fatalf("recent anomalies = %+v, want one resolved", snap.Recent)
	}
	if !strings.Contains(logBuf.String(), "anomaly resolved") {
		t.Fatalf("resolution log record missing:\n%s", logBuf.String())
	}
}

func TestHandlerFormats(t *testing.T) {
	now := time.Unix(1700000000, 0)
	m := NewMonitor(testConfig(func() time.Time { return now }))
	m.RecordShardCall(0, false)
	m.RecordRouting(RouteDegraded)
	gridBucket(m, 5, nil)
	now = now.Add(time.Second)
	m.rotate()

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON from /debug/health: %v", err)
	}
	if snap.Status != StatusWarming {
		t.Fatalf("status = %q, want warming", snap.Status)
	}
	if snap.Routing.Degraded != 1 || snap.Shards[0].Calls != 1 {
		t.Fatalf("snapshot lost counters: %+v", snap)
	}

	rec = httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health?format=text", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "health: warming") || !strings.Contains(body, "top slices") {
		t.Fatalf("text format missing sections:\n%s", body)
	}
}

func TestDefaultSlicer(t *testing.T) {
	sl := DefaultSlicer("svc-1/isp-2/metro-3/p-9")
	if sl.Service != "svc-1" || sl.ISP != "isp-2" || sl.Metro != "metro-3" {
		t.Fatalf("structured slice = %+v", sl)
	}
	if k := sliceKey(sl); k != "svc-1/isp-2/metro-3" {
		t.Fatalf("slice key = %q", k)
	}
	flat := DefaultSlicer("path-17")
	if flat.Service != "path-17" || flat.ISP != "" || flat.Metro != "" {
		t.Fatalf("flat slice = %+v", flat)
	}
}

// BenchmarkRecordLookup measures the ingestion hot path; the nil case
// is the disabled-monitor overhead every phi.Server call pays.
func BenchmarkRecordLookup(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var m *Monitor
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RecordLookup("svc-0/isp-0/metro-0/p-0")
		}
	})
	b.Run("enabled", func(b *testing.B) {
		m := NewMonitor(Config{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RecordLookup("svc-0/isp-0/metro-0/p-0")
		}
	})
}
