package quality

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.ObserveLookup("p", OutcomeFresh, 1, 1, 1, 0, true)
	tr.ObserveReport("p", SourceActive, 1, 0)
	tr.ObserveFallback("p")
	tr.ForgetPath("p")
	tr.AddPathSource(func() []PathFreshness { return nil })
	if f, s, fb := tr.CoverageCounts(); f+s+fb != 0 {
		t.Fatalf("nil tracker counted something: %d %d %d", f, s, fb)
	}
	if deg, _, _, _ := tr.HealthCheck(); deg {
		t.Fatal("nil tracker degraded")
	}
	snap := tr.Snapshot()
	if snap.Coverage.Fresh != 0 || snap.TrackedPaths != 0 {
		t.Fatalf("nil tracker snapshot not empty: %+v", snap)
	}
}

func TestCoverageClassification(t *testing.T) {
	tr := New(Config{})
	tr.ObserveLookup("a", OutcomeFresh, 1000, -1, 0, 0, false)
	tr.ObserveLookup("a", OutcomeFresh, 2000, -1, 0, 0, false)
	tr.ObserveLookup("b", OutcomeStale, 9e9, -1, 0, 0, false)
	tr.ObserveLookup("c", OutcomeFallback, -1, -1, 0, 0, false)
	tr.ObserveFallback("d")
	f, s, fb := tr.CoverageCounts()
	if f != 2 || s != 1 || fb != 2 {
		t.Fatalf("coverage = %d/%d/%d, want 2/1/2", f, s, fb)
	}
	snap := tr.Snapshot()
	if got, want := snap.Coverage.FreshFrac, 2.0/5.0; got != want {
		t.Fatalf("fresh_frac = %v, want %v", got, want)
	}
	// Staleness ages recorded only for sources with evidence (age >= 0).
	if n := snap.Freshness["active"].Count; n != 3 {
		t.Fatalf("active staleness samples = %d, want 3", n)
	}
	if n := snap.Freshness["passive"].Count; n != 0 {
		t.Fatalf("passive staleness samples = %d, want 0", n)
	}
}

func TestAccuracyPairingConsumesPrediction(t *testing.T) {
	tr := New(Config{})
	// Prediction: 40ms RTT, 1% loss. Next report observes 50ms, 3%.
	tr.ObserveLookup("p", OutcomeFresh, 0, -1, 40e6, 0.01, true)
	tr.ObserveReport("p", SourceActive, 50e6, 0.03)
	// A second report without a fresh lookup must not pair again.
	tr.ObserveReport("p", SourceActive, 70e6, 0.05)
	snap := tr.Snapshot()
	a := snap.Accuracy["active"]
	if a.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1 (prediction must be consumed)", a.Pairs)
	}
	// |50-40|ms = 10ms = 10000us; histogram error is ~3%.
	if a.RTTAbsErrP90Us < 10000*0.97 || a.RTTAbsErrP90Us > 10000*1.05 {
		t.Fatalf("rtt_abs_err_p90 = %vus, want ~10000us", a.RTTAbsErrP90Us)
	}
	if a.RTTResidMeanUs <= 0 {
		t.Fatalf("resid mean = %v, want positive (under-prediction)", a.RTTResidMeanUs)
	}
	if a.LossAbsErrP90 < 0.019 || a.LossAbsErrP90 > 0.021 {
		t.Fatalf("loss_abs_err_p90 = %v, want ~0.02", a.LossAbsErrP90)
	}
	if ov := snap.Accuracy["overall"]; ov.Pairs != 1 {
		t.Fatalf("overall pairs = %d, want 1", ov.Pairs)
	}
}

func TestSignedResidualSplit(t *testing.T) {
	tr := New(Config{})
	// Over-prediction: predicted 100ms, observed 60ms → negative residual.
	tr.ObserveLookup("p", OutcomeFresh, 0, -1, 100e6, 0, true)
	tr.ObserveReport("p", SourceActive, 60e6, 0)
	a := tr.Snapshot().Accuracy["active"]
	if a.RTTResidMeanUs >= 0 {
		t.Fatalf("resid mean = %v, want negative (over-prediction)", a.RTTResidMeanUs)
	}
	if a.RTTResidNegP90 < 40000*0.97 {
		t.Fatalf("neg resid p90 = %v, want ~40000us", a.RTTResidNegP90)
	}
	if a.RTTResidPosP90 != 0 {
		t.Fatalf("pos resid p90 = %v, want 0", a.RTTResidPosP90)
	}
}

func TestDriftSignIsPassiveMinusActive(t *testing.T) {
	tr := New(Config{})
	tr.ObserveReport("p", SourceActive, 40e6, 0)
	tr.ObserveReport("p", SourcePassive, 45e6, 0) // passive sees +5ms
	tr.ObserveReport("q", SourcePassive, 40e6, 0)
	tr.ObserveReport("q", SourceActive, 50e6, 0) // passive saw -10ms
	d := tr.Snapshot().Drift
	if d.Pairs != 2 {
		t.Fatalf("drift pairs = %d, want 2", d.Pairs)
	}
	// Mean of +5ms and -10ms = -2.5ms = -2500us.
	if d.SignedMeanU > -2000 || d.SignedMeanU < -3000 {
		t.Fatalf("drift signed mean = %vus, want ~-2500us", d.SignedMeanU)
	}
	if d.AbsP90Us < 9000 {
		t.Fatalf("drift abs p90 = %vus, want ~10000us", d.AbsP90Us)
	}
}

func TestPendingTableBoundAndForget(t *testing.T) {
	tr := New(Config{MaxPending: 2})
	tr.ObserveLookup("a", OutcomeFresh, 0, -1, 1e6, 0, true)
	tr.ObserveLookup("b", OutcomeFresh, 0, -1, 1e6, 0, true)
	tr.ObserveLookup("c", OutcomeFresh, 0, -1, 1e6, 0, true) // over cap: dropped
	snap := tr.Snapshot()
	if snap.PendingPredictions != 2 {
		t.Fatalf("pending = %d, want 2", snap.PendingPredictions)
	}
	if snap.DroppedPredictions != 1 {
		t.Fatalf("dropped = %d, want 1", snap.DroppedPredictions)
	}
	tr.ForgetPath("a")
	if got := tr.Snapshot().PendingPredictions; got != 1 {
		t.Fatalf("pending after forget = %d, want 1", got)
	}
	// Freed slot admits a new path again.
	tr.ObserveLookup("d", OutcomeFresh, 0, -1, 1e6, 0, true)
	if got := tr.Snapshot().PendingPredictions; got != 2 {
		t.Fatalf("pending after refill = %d, want 2", got)
	}
}

func TestHealthCheckWindows(t *testing.T) {
	tr := New(Config{MinSamples: 10, MinFreshFrac: 0.5})
	// Window 1: too few samples to judge.
	for i := 0; i < 5; i++ {
		tr.ObserveFallback("p")
	}
	if deg, _, _, _ := tr.HealthCheck(); deg {
		t.Fatal("degraded below MinSamples")
	}
	// Window 2: all fresh — healthy.
	for i := 0; i < 20; i++ {
		tr.ObserveLookup("p", OutcomeFresh, 0, -1, 0, 0, false)
	}
	if deg, _, _, obs := tr.HealthCheck(); deg || obs != 1 {
		t.Fatalf("healthy window judged degraded (deg=%v obs=%v)", deg, obs)
	}
	// Window 3: all fallback — degraded, and only this window counts.
	for i := 0; i < 20; i++ {
		tr.ObserveFallback("p")
	}
	deg, reason, base, obs := tr.HealthCheck()
	if !deg || reason != "coverage-drop" {
		t.Fatalf("want coverage-drop, got deg=%v reason=%q", deg, reason)
	}
	if base != 0.5 || obs != 0 {
		t.Fatalf("baseline/observed = %v/%v, want 0.5/0", base, obs)
	}
}

func TestStalestRanking(t *testing.T) {
	tr := New(Config{TopK: 2})
	tr.AddPathSource(func() []PathFreshness {
		return []PathFreshness{
			{Path: "fresh", AgeActiveNs: 1e9, AgePassiveNs: -1},
			{Path: "never", AgeActiveNs: -1, AgePassiveNs: -1},
			{Path: "old", AgeActiveNs: 90e9, AgePassiveNs: 100e9},
		}
	})
	snap := tr.Snapshot()
	if snap.TrackedPaths != 3 {
		t.Fatalf("tracked = %d, want 3", snap.TrackedPaths)
	}
	if len(snap.StalestPaths) != 2 {
		t.Fatalf("stalest = %d entries, want 2", len(snap.StalestPaths))
	}
	if snap.StalestPaths[0].Path != "never" || snap.StalestPaths[1].Path != "old" {
		t.Fatalf("stalest order = %q,%q, want never,old",
			snap.StalestPaths[0].Path, snap.StalestPaths[1].Path)
	}
	// "old"'s freshest evidence is active at 90s.
	if snap.StalestPaths[1].AgeActiveS != 90 {
		t.Fatalf("old age_active = %v, want 90", snap.StalestPaths[1].AgeActiveS)
	}
}

func TestHandlerJSONAndText(t *testing.T) {
	tr := New(Config{})
	tr.ObserveLookup("p", OutcomeFresh, 5e8, -1, 40e6, 0, true)
	tr.ObserveReport("p", SourceActive, 45e6, 0)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/context", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Coverage.Fresh != 1 || snap.Accuracy["overall"].Pairs != 1 {
		t.Fatalf("snapshot content wrong: %+v", snap)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/context?format=text", nil))
	body := rec.Body.String()
	for _, want := range []string{"coverage:", "freshness[active]", "accuracy[overall]", "drift(passive-active)"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsRegistration(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{Registry: reg})
	tr.ObserveLookup("p", OutcomeFresh, 1e6, -1, 40e6, 0, true)
	tr.ObserveReport("p", SourceActive, 45e6, 0)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"phi_context_lookup_fresh_total 1",
		`phi_context_staleness_seconds_count{source="active"} 1`,
		`phi_context_pairs_total{source="active"} 1`,
		`phi_context_rtt_abs_error_seconds_count{source="active"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkObserveLookupNil pins the disabled-path overhead: a nil
// tracker must cost a branch, nothing more.
func BenchmarkObserveLookupNil(b *testing.B) {
	var tr *Tracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveLookup("p", OutcomeFresh, 1000, -1, 1e6, 0, true)
	}
}

func BenchmarkObserveLookupAttached(b *testing.B) {
	tr := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveLookup("p", OutcomeFresh, 1000, -1, 1e6, 0, true)
	}
}

func BenchmarkObserveReportAttached(b *testing.B) {
	tr := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveLookup("p", OutcomeFresh, 1000, -1, 1e6, 0, true)
		tr.ObserveReport("p", SourceActive, 2e6, 0)
	}
}
