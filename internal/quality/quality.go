// Package quality is the context-quality observatory: it measures
// whether the shared per-path context the serving machinery works so
// hard to deliver is actually fresh, covering, and accurate.
//
// Three measurements, all sampled on the live lookup/report path:
//
//   - Freshness: how old the newest evidence behind each served context
//     is, per source (active sender reports vs passive IPFIX inference),
//     as staleness-age histograms plus a top-K stalest-paths list.
//   - Coverage: every lookup classified as fresh-hit, stale-hit, or
//     default-fallback (no usable state, or no shard reachable), so the
//     fraction of senders actually benefiting from shared state is a
//     number, not a hope.
//   - Predictive accuracy: the RTT/loss estimate served at lookup time
//     is remembered and paired against the next report observed for the
//     same path; signed-residual and absolute-error quantiles per source
//     say how wrong the context was, and the passive-vs-active drift
//     histogram validates the ingest pipeline against sender ground
//     truth.
//
// The package follows the telemetry discipline: every hook is nil-safe
// (a nil *Tracker no-ops, so uninstrumented deployments pay one branch),
// the record path is lock-free outside a tiny per-path pairing entry,
// and nothing here imports phi, cluster, or health — the server layers
// call in, never the reverse.
package quality

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Source distinguishes the two ways context evidence arrives.
type Source uint8

const (
	// SourceActive is evidence from cooperating senders (the wire
	// protocol's connection-boundary reports).
	SourceActive Source = iota
	// SourcePassive is evidence inferred from observed traffic (the
	// IPFIX ingest pipeline).
	SourcePassive

	numSources = 2
)

func (s Source) String() string {
	if s == SourcePassive {
		return "passive"
	}
	return "active"
}

// Outcome classifies one lookup by the quality of what it was served.
type Outcome uint8

const (
	// OutcomeFresh means the path had evidence newer than the freshness
	// TTL: the sender got live shared state.
	OutcomeFresh Outcome = iota
	// OutcomeStale means the path had evidence, but older than the TTL:
	// the sender got a context that may no longer describe the path.
	OutcomeStale
	// OutcomeFallback means no usable state existed (a never-reported
	// path, or no shard reachable): the sender fell back to policy
	// defaults, exactly as if there were no context server at all.
	OutcomeFallback
)

func (o Outcome) String() string {
	switch o {
	case OutcomeFresh:
		return "fresh"
	case OutcomeStale:
		return "stale"
	default:
		return "fallback"
	}
}

// PathFreshness is one path's last-update metadata, as reported by a
// registered path source (ages, not timestamps, so the tracker needs no
// clock). A negative age means that source has never updated the path.
type PathFreshness struct {
	Path         string `json:"path"`
	AgeActiveNs  int64  `json:"age_active_ns"`
	AgePassiveNs int64  `json:"age_passive_ns"`
}

// Config tunes a Tracker. The zero value is usable.
type Config struct {
	// Registry, when set, registers every instrument as phi_context_*
	// metrics; nil keeps the tracker self-contained (snapshots and the
	// debug handler still work).
	Registry *telemetry.Registry
	// MaxPending bounds the prediction-pairing table (default 65536).
	// At the cap, new paths' predictions are dropped and counted rather
	// than growing without bound.
	MaxPending int
	// TopK is how many stalest paths a snapshot lists (default 10).
	TopK int
	// MinSamples is the minimum lookups per health-evaluation window
	// before coverage can be judged degraded (default 50).
	MinSamples uint64
	// MinFreshFrac is the fresh-hit fraction below which a window is
	// judged degraded (default 0.5).
	MinFreshFrac float64
}

func (c Config) withDefaults() Config {
	if c.MaxPending <= 0 {
		c.MaxPending = 65536
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.MinSamples == 0 {
		c.MinSamples = 50
	}
	if c.MinFreshFrac == 0 {
		c.MinFreshFrac = 0.5
	}
	return c
}

// pathEntry is the per-path pairing state: the prediction served by the
// most recent lookup (consumed by the next report) and the last RTT
// seen per source (for active-vs-passive drift). Guarded by its own
// mutex — contention is per path, never global.
type pathEntry struct {
	mu        sync.Mutex
	predRTTNs int64
	predLoss  float64
	predValid bool
	lastRTTNs [numSources]int64
	rttValid  [numSources]bool
}

// Tracker is the process-wide quality observatory. One instance is
// shared by every shard and replica in the process, so coverage and
// accuracy aggregate across the cluster and survive shard crashes,
// restores, and fleet promotions — the tracker outlives the servers it
// observes. All methods are safe on a nil receiver.
type Tracker struct {
	cfg Config

	// Coverage: lookup-outcome counters.
	fresh    *telemetry.Counter
	stale    *telemetry.Counter
	fallback *telemetry.Counter

	// Freshness: staleness ages sampled at lookup time, per source.
	staleness [numSources]*telemetry.Histogram

	// Accuracy: per-source paired-error instruments. Residuals are
	// observed − predicted, split into positive (under-prediction) and
	// negative (over-prediction, stored as magnitude) histograms so the
	// lock-free non-negative histogram can carry a signed distribution.
	pairs       [numSources]*telemetry.Counter
	rttAbsErr   [numSources]*telemetry.Histogram
	rttResidPos [numSources]*telemetry.Histogram
	rttResidNeg [numSources]*telemetry.Histogram
	lossAbsErr  [numSources]*telemetry.Histogram

	// Drift: |passive − active| RTT on paths both sources report, the
	// ingest-validation measurement; signed via the same pos/neg split
	// (pos = passive saw a larger RTT than active).
	driftPairs *telemetry.Counter
	driftPos   *telemetry.Histogram
	driftNeg   *telemetry.Histogram

	// Prediction-pairing table.
	pending      sync.Map // path string -> *pathEntry
	pendingCount atomic.Int64
	pendingGauge *telemetry.Gauge
	dropped      *telemetry.Counter

	// Path-freshness sources, polled only at snapshot time.
	srcMu   sync.Mutex
	sources []func() []PathFreshness

	// Health-evaluation window state (previous poll's cumulative
	// coverage counts), guarded by evalMu.
	evalMu       sync.Mutex
	evalFresh    uint64
	evalStale    uint64
	evalFallback uint64
}

// New builds a tracker. With a registry, every instrument doubles as a
// registered phi_context_* metric; without one the instruments are
// standalone (still snapshot-able).
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{cfg: cfg}
	reg := cfg.Registry
	counter := func(name, help string, labels telemetry.Labels) *telemetry.Counter {
		if reg != nil {
			return reg.Counter(name, help, labels)
		}
		return telemetry.NewCounter()
	}
	hist := func(name, help string, labels telemetry.Labels) *telemetry.Histogram {
		if reg != nil {
			return reg.Histogram(name, help, labels)
		}
		return telemetry.NewHistogram()
	}
	gauge := func(name, help string, labels telemetry.Labels) *telemetry.Gauge {
		if reg != nil {
			return reg.Gauge(name, help, labels)
		}
		return telemetry.NewGauge()
	}
	t.fresh = counter("phi_context_lookup_fresh_total", "lookups served context with evidence newer than the freshness TTL", nil)
	t.stale = counter("phi_context_lookup_stale_total", "lookups served context whose newest evidence was older than the freshness TTL", nil)
	t.fallback = counter("phi_context_lookup_fallback_total", "lookups that fell back to policy defaults (no state, or no shard reachable)", nil)
	for src := Source(0); src < numSources; src++ {
		l := telemetry.Labels{"source": src.String()}
		t.staleness[src] = hist("phi_context_staleness_seconds", "age of the source's newest evidence, sampled at lookup time", l)
		t.pairs[src] = counter("phi_context_pairs_total", "lookup predictions paired against a subsequent report", l)
		t.rttAbsErr[src] = hist("phi_context_rtt_abs_error_seconds", "absolute error of the RTT estimate served at lookup vs the next report", l)
		t.rttResidPos[src] = hist("phi_context_rtt_residual_seconds", "signed RTT residual (observed - predicted), split by sign", telemetry.Labels{"source": src.String(), "sign": "pos"})
		t.rttResidNeg[src] = hist("phi_context_rtt_residual_seconds", "signed RTT residual (observed - predicted), split by sign", telemetry.Labels{"source": src.String(), "sign": "neg"})
		t.lossAbsErr[src] = hist("phi_context_loss_abs_error_millionths", "absolute error of the loss estimate (unitless, scaled by 1e6)", l)
	}
	t.driftPairs = counter("phi_context_drift_pairs_total", "paths where active and passive RTT evidence could be compared", nil)
	t.driftPos = hist("phi_context_drift_rtt_seconds", "passive-vs-active RTT disagreement, split by sign (pos = passive larger)", telemetry.Labels{"sign": "pos"})
	t.driftNeg = hist("phi_context_drift_rtt_seconds", "passive-vs-active RTT disagreement, split by sign (pos = passive larger)", telemetry.Labels{"sign": "neg"})
	t.pendingGauge = gauge("phi_context_pending_predictions", "predictions awaiting their pairing report", nil)
	t.dropped = counter("phi_context_dropped_predictions_total", "predictions dropped because the pairing table was full", nil)
	return t
}

// AddPathSource registers a per-path freshness enumerator (a shard's
// live path table). Sources are polled only when a snapshot is taken,
// never on the hot path. Nil trackers and nil funcs are ignored.
func (t *Tracker) AddPathSource(fn func() []PathFreshness) {
	if t == nil || fn == nil {
		return
	}
	t.srcMu.Lock()
	t.sources = append(t.sources, fn)
	t.srcMu.Unlock()
}

// entry returns the pairing entry for path, creating it if the table
// has room. A full table returns nil (the caller drops the pairing work
// but never the coverage counts).
func (t *Tracker) entry(path string) *pathEntry {
	if e, ok := t.pending.Load(path); ok {
		return e.(*pathEntry)
	}
	if t.pendingCount.Load() >= int64(t.cfg.MaxPending) {
		return nil
	}
	e := &pathEntry{}
	if actual, loaded := t.pending.LoadOrStore(path, e); loaded {
		return actual.(*pathEntry)
	}
	t.pendingGauge.Set(float64(t.pendingCount.Add(1)))
	return e
}

// ObserveLookup records one lookup's outcome, the staleness ages behind
// it, and (when the served context carried a usable estimate) the
// prediction to pair against the path's next report. Ages are
// nanoseconds since each source's last evidence; negative means never.
func (t *Tracker) ObserveLookup(path string, o Outcome, ageActiveNs, agePassiveNs, predRTTNs int64, predLoss float64, predValid bool) {
	if t == nil {
		return
	}
	switch o {
	case OutcomeFresh:
		t.fresh.Inc()
	case OutcomeStale:
		t.stale.Inc()
	default:
		t.fallback.Inc()
	}
	if ageActiveNs >= 0 {
		t.staleness[SourceActive].Record(ageActiveNs)
	}
	if agePassiveNs >= 0 {
		t.staleness[SourcePassive].Record(agePassiveNs)
	}
	if !predValid {
		return
	}
	e := t.entry(path)
	if e == nil {
		t.dropped.Inc()
		return
	}
	e.mu.Lock()
	e.predRTTNs = predRTTNs
	e.predLoss = predLoss
	e.predValid = true
	e.mu.Unlock()
}

// ObserveReport pairs one report's observations against the prediction
// the path's most recent lookup served (consuming it — each prediction
// scores against the next report only), and feeds the active-vs-passive
// drift comparison. rttNs is the report's average RTT; loss its loss
// rate.
func (t *Tracker) ObserveReport(path string, src Source, rttNs int64, loss float64) {
	if t == nil || src >= numSources || rttNs <= 0 {
		return
	}
	e := t.entry(path)
	if e == nil {
		return
	}
	e.mu.Lock()
	predValid := e.predValid
	predRTT := e.predRTTNs
	predLoss := e.predLoss
	e.predValid = false
	other := 1 - src
	otherValid := e.rttValid[other]
	otherRTT := e.lastRTTNs[other]
	e.lastRTTNs[src] = rttNs
	e.rttValid[src] = true
	e.mu.Unlock()

	if predValid {
		t.pairs[src].Inc()
		resid := rttNs - predRTT
		if resid >= 0 {
			t.rttAbsErr[src].Record(resid)
			t.rttResidPos[src].Record(resid)
		} else {
			t.rttAbsErr[src].Record(-resid)
			t.rttResidNeg[src].Record(-resid)
		}
		lerr := loss - predLoss
		if lerr < 0 {
			lerr = -lerr
		}
		t.lossAbsErr[src].Record(int64(lerr * 1e6))
	}
	if otherValid {
		t.driftPairs.Inc()
		// Signed as passive − active regardless of which side reported.
		d := rttNs - otherRTT
		if src == SourceActive {
			d = -d
		}
		if d >= 0 {
			t.driftPos.Record(d)
		} else {
			t.driftNeg.Record(-d)
		}
	}
}

// ObserveFallback records a lookup that never reached any shard (the
// frontend's all-replicas-down degradation) — a fallback outcome with
// no path state to sample.
func (t *Tracker) ObserveFallback(path string) {
	if t == nil {
		return
	}
	t.fallback.Inc()
}

// ForgetPath drops the path's pairing entry — the eviction tie-in: when
// the server evicts an idle path, its pending prediction goes with it.
func (t *Tracker) ForgetPath(path string) {
	if t == nil {
		return
	}
	if _, ok := t.pending.LoadAndDelete(path); ok {
		t.pendingGauge.Set(float64(t.pendingCount.Add(-1)))
	}
}

// CoverageCounts returns the cumulative lookup-outcome counters.
func (t *Tracker) CoverageCounts() (fresh, stale, fallback uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.fresh.Value(), t.stale.Value(), t.fallback.Value()
}

// HealthCheck judges the coverage observed since the previous call: one
// evaluation window per call, sized by whoever polls (the health
// monitor's rotation). Degraded means enough lookups happened to judge
// (>= MinSamples) and the fresh fraction fell below MinFreshFrac.
// Baseline and observed are the threshold and measured fractions, for
// the anomaly record.
func (t *Tracker) HealthCheck() (degraded bool, reason string, baseline, observed float64) {
	if t == nil {
		return false, "", 0, 0
	}
	fresh, stale, fallback := t.CoverageCounts()
	t.evalMu.Lock()
	dFresh := fresh - t.evalFresh
	dStale := stale - t.evalStale
	dFallback := fallback - t.evalFallback
	t.evalFresh, t.evalStale, t.evalFallback = fresh, stale, fallback
	t.evalMu.Unlock()
	total := dFresh + dStale + dFallback
	if total < t.cfg.MinSamples {
		return false, "", t.cfg.MinFreshFrac, 0
	}
	frac := float64(dFresh) / float64(total)
	if frac < t.cfg.MinFreshFrac {
		return true, "coverage-drop", t.cfg.MinFreshFrac, frac
	}
	return false, "", t.cfg.MinFreshFrac, frac
}
