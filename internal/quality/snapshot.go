package quality

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/telemetry"
)

// CoverageSnapshot is the lookup-outcome breakdown.
type CoverageSnapshot struct {
	Fresh    uint64 `json:"fresh"`
	Stale    uint64 `json:"stale"`
	Fallback uint64 `json:"fallback"`
	// FreshFrac is fresh / (fresh+stale+fallback), 0 when nothing has
	// been looked up.
	FreshFrac float64 `json:"fresh_frac"`
}

// HistStats summarizes one histogram in seconds.
type HistStats struct {
	Count uint64  `json:"count"`
	P50S  float64 `json:"p50_s"`
	P90S  float64 `json:"p90_s"`
	P99S  float64 `json:"p99_s"`
	MaxS  float64 `json:"max_s"`
}

func histStats(s *telemetry.HistSnapshot) HistStats {
	return HistStats{
		Count: s.Count,
		P50S:  float64(s.Quantile(0.50)) / 1e9,
		P90S:  float64(s.Quantile(0.90)) / 1e9,
		P99S:  float64(s.Quantile(0.99)) / 1e9,
		MaxS:  float64(s.Max()) / 1e9,
	}
}

// AccuracySnapshot is the paired prediction-error summary for one
// source (or the merged "overall" view). RTT quantities are
// microseconds; loss error is unitless.
type AccuracySnapshot struct {
	Pairs uint64 `json:"pairs"`
	// Absolute RTT error quantiles.
	RTTAbsErrP50Us float64 `json:"rtt_abs_err_p50_us"`
	RTTAbsErrP90Us float64 `json:"rtt_abs_err_p90_us"`
	RTTAbsErrP99Us float64 `json:"rtt_abs_err_p99_us"`
	// Signed residual (observed − predicted): mean, and the p90 of each
	// sign's magnitude. A large positive side means the context
	// under-predicts RTT.
	RTTResidMeanUs float64 `json:"rtt_resid_mean_us"`
	RTTResidPosP90 float64 `json:"rtt_resid_pos_p90_us"`
	RTTResidNegP90 float64 `json:"rtt_resid_neg_p90_us"`
	// Absolute loss-rate error quantiles (unitless).
	LossAbsErrP50 float64 `json:"loss_abs_err_p50"`
	LossAbsErrP90 float64 `json:"loss_abs_err_p90"`
}

func accuracyStats(pairs uint64, abs, pos, neg, loss *telemetry.HistSnapshot) AccuracySnapshot {
	a := AccuracySnapshot{
		Pairs:          pairs,
		RTTAbsErrP50Us: float64(abs.Quantile(0.50)) / 1e3,
		RTTAbsErrP90Us: float64(abs.Quantile(0.90)) / 1e3,
		RTTAbsErrP99Us: float64(abs.Quantile(0.99)) / 1e3,
		RTTResidPosP90: float64(pos.Quantile(0.90)) / 1e3,
		RTTResidNegP90: float64(neg.Quantile(0.90)) / 1e3,
		LossAbsErrP50:  float64(loss.Quantile(0.50)) / 1e6,
		LossAbsErrP90:  float64(loss.Quantile(0.90)) / 1e6,
	}
	if n := pos.Count + neg.Count; n > 0 {
		a.RTTResidMeanUs = float64(pos.Sum-neg.Sum) / float64(n) / 1e3
	}
	return a
}

// DriftSnapshot is the passive-vs-active RTT disagreement summary
// (microseconds; signed as passive − active).
type DriftSnapshot struct {
	Pairs       uint64  `json:"pairs"`
	AbsP50Us    float64 `json:"abs_p50_us"`
	AbsP90Us    float64 `json:"abs_p90_us"`
	SignedMeanU float64 `json:"signed_mean_us"`
}

// StalePath is one row of the top-K stalest-paths list. Ages are
// seconds; negative means that source never updated the path.
type StalePath struct {
	Path        string  `json:"path"`
	AgeActiveS  float64 `json:"age_active_s"`
	AgePassiveS float64 `json:"age_passive_s"`
}

// Snapshot is the full quality picture at one instant, served at
// /debug/context.
type Snapshot struct {
	Coverage  CoverageSnapshot            `json:"coverage"`
	Freshness map[string]HistStats        `json:"freshness"`
	Accuracy  map[string]AccuracySnapshot `json:"accuracy"`
	Drift     DriftSnapshot               `json:"drift"`
	// StalestPaths lists the TopK paths whose newest evidence (from
	// either source) is oldest, worst first.
	StalestPaths []StalePath `json:"stalest_paths"`
	// TrackedPaths is how many paths the registered sources enumerate.
	TrackedPaths int `json:"tracked_paths"`
	// PendingPredictions / DroppedPredictions describe the pairing table.
	PendingPredictions int64  `json:"pending_predictions"`
	DroppedPredictions uint64 `json:"dropped_predictions"`
}

// Snapshot captures the tracker's current state. Path sources are
// polled here (and only here). A nil tracker yields a zero snapshot.
func (t *Tracker) Snapshot() Snapshot {
	var snap Snapshot
	snap.Freshness = make(map[string]HistStats, numSources)
	snap.Accuracy = make(map[string]AccuracySnapshot, numSources+1)
	if t == nil {
		return snap
	}
	fresh, stale, fallback := t.CoverageCounts()
	snap.Coverage = CoverageSnapshot{Fresh: fresh, Stale: stale, Fallback: fallback}
	if total := fresh + stale + fallback; total > 0 {
		snap.Coverage.FreshFrac = float64(fresh) / float64(total)
	}

	absAll, posAll, negAll, lossAll := &telemetry.HistSnapshot{}, &telemetry.HistSnapshot{}, &telemetry.HistSnapshot{}, &telemetry.HistSnapshot{}
	var pairsAll uint64
	for src := Source(0); src < numSources; src++ {
		snap.Freshness[src.String()] = histStats(t.staleness[src].Snapshot())
		abs := t.rttAbsErr[src].Snapshot()
		pos := t.rttResidPos[src].Snapshot()
		neg := t.rttResidNeg[src].Snapshot()
		loss := t.lossAbsErr[src].Snapshot()
		pairs := t.pairs[src].Value()
		snap.Accuracy[src.String()] = accuracyStats(pairs, abs, pos, neg, loss)
		absAll.Merge(abs)
		posAll.Merge(pos)
		negAll.Merge(neg)
		lossAll.Merge(loss)
		pairsAll += pairs
	}
	snap.Accuracy["overall"] = accuracyStats(pairsAll, absAll, posAll, negAll, lossAll)

	dPos := t.driftPos.Snapshot()
	dNeg := t.driftNeg.Snapshot()
	snap.Drift = DriftSnapshot{Pairs: t.driftPairs.Value()}
	if n := dPos.Count + dNeg.Count; n > 0 {
		snap.Drift.SignedMeanU = float64(dPos.Sum-dNeg.Sum) / float64(n) / 1e3
		merged := (&telemetry.HistSnapshot{}).Merge(dPos).Merge(dNeg)
		snap.Drift.AbsP50Us = float64(merged.Quantile(0.50)) / 1e3
		snap.Drift.AbsP90Us = float64(merged.Quantile(0.90)) / 1e3
	}

	snap.StalestPaths, snap.TrackedPaths = t.stalest()
	snap.PendingPredictions = t.pendingCount.Load()
	snap.DroppedPredictions = t.dropped.Value()
	return snap
}

// stalest polls every path source and ranks paths by the age of their
// newest evidence from any source (paths with no evidence at all rank
// stalest), returning the worst TopK and the total path count.
func (t *Tracker) stalest() ([]StalePath, int) {
	t.srcMu.Lock()
	sources := append([]func() []PathFreshness(nil), t.sources...)
	t.srcMu.Unlock()
	var all []PathFreshness
	for _, fn := range sources {
		all = append(all, fn()...)
	}
	if len(all) == 0 {
		return nil, 0
	}
	freshest := func(p PathFreshness) int64 {
		// The newest evidence is the smaller of the two ages; a source
		// that never reported contributes nothing.
		switch {
		case p.AgeActiveNs < 0 && p.AgePassiveNs < 0:
			return int64(^uint64(0) >> 1) // never updated: stalest possible
		case p.AgeActiveNs < 0:
			return p.AgePassiveNs
		case p.AgePassiveNs < 0:
			return p.AgeActiveNs
		case p.AgeActiveNs < p.AgePassiveNs:
			return p.AgeActiveNs
		default:
			return p.AgePassiveNs
		}
	}
	sort.Slice(all, func(i, j int) bool { return freshest(all[i]) > freshest(all[j]) })
	k := t.cfg.TopK
	if k > len(all) {
		k = len(all)
	}
	out := make([]StalePath, k)
	for i := 0; i < k; i++ {
		out[i] = StalePath{
			Path:        all[i].Path,
			AgeActiveS:  ageSeconds(all[i].AgeActiveNs),
			AgePassiveS: ageSeconds(all[i].AgePassiveNs),
		}
	}
	return out, len(all)
}

func ageSeconds(ns int64) float64 {
	if ns < 0 {
		return -1
	}
	return float64(ns) / 1e9
}

// Handler serves the quality snapshot: JSON by default, an aligned
// text rendering with ?format=text — the same convention as
// /debug/health.
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := t.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeText(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

func writeText(w io.Writer, s Snapshot) {
	c := s.Coverage
	fmt.Fprintf(w, "coverage: fresh=%d stale=%d fallback=%d fresh_frac=%.3f\n",
		c.Fresh, c.Stale, c.Fallback, c.FreshFrac)
	for _, src := range []string{"active", "passive"} {
		f := s.Freshness[src]
		fmt.Fprintf(w, "freshness[%s]: n=%d p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
			src, f.Count, f.P50S, f.P90S, f.P99S, f.MaxS)
	}
	for _, src := range []string{"active", "passive", "overall"} {
		a := s.Accuracy[src]
		fmt.Fprintf(w, "accuracy[%s]: pairs=%d rtt_abs_err p50=%.0fus p90=%.0fus p99=%.0fus resid_mean=%+.0fus loss_abs_err p90=%.6f\n",
			src, a.Pairs, a.RTTAbsErrP50Us, a.RTTAbsErrP90Us, a.RTTAbsErrP99Us, a.RTTResidMeanUs, a.LossAbsErrP90)
	}
	fmt.Fprintf(w, "drift(passive-active): pairs=%d abs_p50=%.0fus abs_p90=%.0fus signed_mean=%+.0fus\n",
		s.Drift.Pairs, s.Drift.AbsP50Us, s.Drift.AbsP90Us, s.Drift.SignedMeanU)
	fmt.Fprintf(w, "paths: tracked=%d pending_predictions=%d dropped=%d\n",
		s.TrackedPaths, s.PendingPredictions, s.DroppedPredictions)
	for _, p := range s.StalestPaths {
		fmt.Fprintf(w, "stale: %-24s age_active=%.3fs age_passive=%.3fs\n",
			p.Path, p.AgeActiveS, p.AgePassiveS)
	}
}
