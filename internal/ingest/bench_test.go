package ingest

import (
	"testing"

	"repro/internal/ipfix"
	"repro/internal/ipfix/synth"
	"repro/internal/phi"
	"repro/internal/sim"
)

// benchMessages pre-encodes a synthetic stream so the benchmark measures
// the pipeline (decode + track + report), not the generator.
func benchMessages(b *testing.B, millis int) [][]byte {
	b.Helper()
	stream := synth.NewStream(synth.StreamConfig{
		Flows: 256, Paths: 16, LossRate: 0.01, Seed: 1,
	})
	enc := ipfix.NewEncoder(1)
	msgs, err := stream.Messages(enc, millis, 400)
	if err != nil {
		b.Fatal(err)
	}
	return msgs
}

// BenchmarkPipelineIngest drives pre-encoded IPFIX through the full
// synchronous pipeline into a real phi.Server and reports records/sec —
// the number `make bench-ingest` pins in BENCH_ingest.json.
func BenchmarkPipelineIngest(b *testing.B) {
	msgs := benchMessages(b, 2000)
	var records int
	{
		dec := ipfix.NewDecoder()
		for _, m := range msgs {
			recs, _ := dec.Decode(m)
			records += len(recs)
		}
	}
	var now sim.Time
	server := phi.NewServer(func() sim.Time { return now }, phi.ServerConfig{})
	p, err := New(Config{Sink: server, Synchronous: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			p.Datagram("bench", m)
		}
	}
	b.StopTimer()
	recs := float64(records) * float64(b.N)
	b.ReportMetric(recs/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/recs, "ns/record")
}

// BenchmarkTrackerObserve isolates the tracker hot path (no codec).
func BenchmarkTrackerObserve(b *testing.B) {
	stream := synth.NewStream(synth.StreamConfig{
		Flows: 256, Paths: 16, LossRate: 0.01, Seed: 1,
	})
	recs := stream.Next(2000)
	sink := nullSink{}
	cfg, err := Config{Sink: sink}.withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	tr := newTracker(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			tr.observe(&recs[j])
		}
		for tr.due() {
			tr.flush()
		}
	}
	b.StopTimer()
	n := float64(len(recs)) * float64(b.N)
	b.ReportMetric(n/b.Elapsed().Seconds(), "records/s")
}

type nullSink struct{}

func (nullSink) ReportStart(phi.PathKey) error           { return nil }
func (nullSink) ReportEnd(phi.PathKey, phi.Report) error { return nil }
func (nullSink) ReportProgress(phi.PathKey, phi.Report) error {
	return nil
}
