package ingest

import (
	"sync"
	"sync/atomic"

	"repro/internal/ipfix"
)

// datagram is one received export message with its transport session.
type datagram struct {
	session string
	data    []byte
}

// Pipeline is the passive-ingest ETL. Feed it datagrams (Datagram, the
// handler shape ipfix.NewRawCollector wants) or pre-decoded records
// (Records); reconstructed context flows out through Config.Sink.
//
// In the default asynchronous mode the stages run on their own
// goroutines — decode on one, track on another (reporting is fused into
// track: windows flush at most once per WindowMillis, and splitting the
// sink calls onto a third queue could drop a ReportEnd and leak a
// sender registration). The stages are connected by bounded queues that
// drop (and count) under overload instead of queueing without bound. In
// synchronous mode everything runs inline on the caller's goroutine:
// same code, deterministic order. Feed methods are safe for one
// concurrent caller each (the raw collector's receive goroutine).
type Pipeline struct {
	cfg Config

	// decode-stage state (owned by the decode goroutine, or the caller
	// in synchronous mode).
	decoders map[string]*ipfix.Decoder

	// track-stage state (owned by the track goroutine / caller).
	tracker *tracker

	decodeQ chan datagram
	trackQ  chan []ipfix.FlowRecord

	// Counters, all atomics so Snapshot never blocks a stage.
	datagrams      atomic.Uint64
	records        atomic.Uint64
	decodeDrops    atomic.Uint64
	trackDrops     atomic.Uint64
	decodeErrors   atomic.Uint64
	orphanRecords  atomic.Uint64
	orphanDropped  atomic.Uint64
	reportsEmitted atomic.Uint64

	mu      sync.Mutex // guards tracker access across Snapshot/track stage
	wg      sync.WaitGroup
	stopped chan struct{}
	once    sync.Once
}

// New builds a pipeline. In asynchronous mode (cfg.Synchronous false)
// the stage goroutines start immediately; call Stop to drain and halt.
func New(cfg Config) (*Pipeline, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:      cfg,
		decoders: make(map[string]*ipfix.Decoder),
		tracker:  newTracker(cfg),
		stopped:  make(chan struct{}),
	}
	if !cfg.Synchronous {
		p.decodeQ = make(chan datagram, cfg.QueueLen)
		p.trackQ = make(chan []ipfix.FlowRecord, cfg.QueueLen)
		p.wg.Add(2)
		go p.decodeLoop()
		go p.trackLoop()
	}
	return p, nil
}

// Datagram feeds one export datagram into the pipeline. The slice is
// owned by the pipeline afterwards (ipfix.NewRawCollector hands over a
// fresh copy per datagram). In asynchronous mode it never blocks: when
// the decode queue is full the datagram is dropped and counted.
func (p *Pipeline) Datagram(session string, data []byte) {
	p.datagrams.Add(1)
	if m := p.cfg.Metrics; m != nil {
		m.Datagrams.Inc()
	}
	if p.cfg.Synchronous {
		p.track(p.decode(session, data))
		return
	}
	select {
	case p.decodeQ <- datagram{session: session, data: data}:
	default:
		p.decodeDrops.Add(1)
		if m := p.cfg.Metrics; m != nil {
			m.DroppedDecode.Inc()
		}
	}
}

// Records bypasses the decode stage, feeding already-decoded records
// (e.g. from a file replay). Same overload behavior as Datagram.
func (p *Pipeline) Records(recs []ipfix.FlowRecord) {
	if len(recs) == 0 {
		return
	}
	if p.cfg.Synchronous {
		p.track(recs)
		return
	}
	select {
	case p.trackQ <- recs:
	default:
		p.trackDrops.Add(uint64(len(recs)))
		if m := p.cfg.Metrics; m != nil {
			m.DroppedTrack.Add(uint64(len(recs)))
		}
	}
}

// decode runs the decode stage for one datagram: a per-session decoder
// (templates are per transport session) hardened against orphan data
// sets and malformed templates.
func (p *Pipeline) decode(session string, data []byte) []ipfix.FlowRecord {
	dec, ok := p.decoders[session]
	if !ok {
		// Sessions are bounded the same way the collector bounds them:
		// refuse pathological session churn by resetting the map.
		if len(p.decoders) >= 256 {
			p.decoders = make(map[string]*ipfix.Decoder)
		}
		dec = ipfix.NewDecoder()
		p.decoders[session] = dec
	}
	preRecovered, preDropped := dec.OrphanRecovered, dec.OrphanDropped
	recs, err := dec.Decode(data)
	if err != nil {
		p.decodeErrors.Add(1)
		if m := p.cfg.Metrics; m != nil {
			m.DecodeErrors.Inc()
		}
	}
	if d := dec.OrphanRecovered - preRecovered; d > 0 {
		p.orphanRecords.Add(d)
		if m := p.cfg.Metrics; m != nil {
			m.OrphanRecords.Add(d)
		}
	}
	if d := dec.OrphanDropped - preDropped; d > 0 {
		p.orphanDropped.Add(d)
	}
	p.records.Add(uint64(len(recs)))
	if m := p.cfg.Metrics; m != nil {
		m.Records.Add(uint64(len(recs)))
	}
	return recs
}

// track runs the track stage for one record batch, flushing whenever
// the stream clock crosses a window boundary.
func (p *Pipeline) track(recs []ipfix.FlowRecord) {
	if len(recs) == 0 {
		return
	}
	p.mu.Lock()
	for i := range recs {
		p.tracker.observe(&recs[i])
	}
	for p.tracker.due() {
		n := p.tracker.flush()
		p.reportsEmitted.Add(uint64(n))
		if m := p.cfg.Metrics; m != nil {
			m.Reports.Add(uint64(n))
			m.Windows.Inc()
			m.Flows.Set(float64(len(p.tracker.flows)))
		}
	}
	p.mu.Unlock()
}

func (p *Pipeline) decodeLoop() {
	defer p.wg.Done()
	for d := range p.decodeQ {
		recs := p.decode(d.session, d.data)
		if len(recs) == 0 {
			continue
		}
		select {
		case p.trackQ <- recs:
		default:
			p.trackDrops.Add(uint64(len(recs)))
			if m := p.cfg.Metrics; m != nil {
				m.DroppedTrack.Add(uint64(len(recs)))
			}
		}
	}
	close(p.trackQ)
}

func (p *Pipeline) trackLoop() {
	defer p.wg.Done()
	for recs := range p.trackQ {
		p.track(recs)
	}
}

// FlushAll forces a window flush regardless of the watermark — the
// deterministic-mode way to drain pending aggregates (also used by Stop).
func (p *Pipeline) FlushAll() {
	p.mu.Lock()
	n := p.tracker.flush()
	p.reportsEmitted.Add(uint64(n))
	if m := p.cfg.Metrics; m != nil {
		m.Reports.Add(uint64(n))
		m.Windows.Inc()
		m.Flows.Set(float64(len(p.tracker.flows)))
	}
	p.mu.Unlock()
}

// Stop drains the queues, flushes the final window, and halts the stage
// goroutines. Safe to call once; Datagram must not be called after.
func (p *Pipeline) Stop() {
	p.once.Do(func() {
		if !p.cfg.Synchronous {
			close(p.decodeQ)
			p.wg.Wait()
		}
		close(p.stopped)
		p.FlushAll()
	})
}

// Stats is the pipeline's counter snapshot for /debug/ingest.
type Stats struct {
	Datagrams     uint64 `json:"datagrams"`
	Records       uint64 `json:"records"`
	Reports       uint64 `json:"reports"`
	DecodeErrors  uint64 `json:"decode_errors"`
	OrphanRecords uint64 `json:"orphan_records"`
	OrphanDropped uint64 `json:"orphan_dropped"`
	// Dropped* count load shed at each stage boundary under overload:
	// whole datagrams at the decode queue, records at the track queue.
	DroppedDecode uint64 `json:"dropped_decode"`
	DroppedTrack  uint64 `json:"dropped_track"`

	Tracker TrackerStats  `json:"tracker"`
	Paths   []PathSummary `json:"paths"`
}

// Snapshot returns the current stats. Safe to call while the pipeline
// runs.
func (p *Pipeline) Snapshot() Stats {
	s := Stats{
		Datagrams:     p.datagrams.Load(),
		Records:       p.records.Load(),
		Reports:       p.reportsEmitted.Load(),
		DecodeErrors:  p.decodeErrors.Load(),
		OrphanRecords: p.orphanRecords.Load(),
		OrphanDropped: p.orphanDropped.Load(),
		DroppedDecode: p.decodeDrops.Load(),
		DroppedTrack:  p.trackDrops.Load(),
	}
	p.mu.Lock()
	s.Tracker = p.tracker.stats
	s.Tracker.Flows = len(p.tracker.flows)
	s.Paths = p.tracker.pathSummaries()
	p.mu.Unlock()
	return s
}
