package ingest

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/ipfix"
)

// DebugSnapshot is the /debug/ingest payload: pipeline counters, the
// tracker's reconstructed per-path state, and (when the pipeline is fed
// by a UDP collector) the collector's transport-layer counters.
type DebugSnapshot struct {
	Pipeline  Stats                 `json:"pipeline"`
	Collector *ipfix.CollectorStats `json:"collector,omitempty"`
}

// Handler serves the pipeline state as JSON (default) or a terminal-
// friendly text summary (?format=text), following the /debug/traces
// conventions. collector may be nil when the pipeline is fed directly.
func Handler(p *Pipeline, collector *ipfix.Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := DebugSnapshot{Pipeline: p.Snapshot()}
		if collector != nil {
			cs := collector.Stats()
			snap.Collector = &cs
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeText(w, &snap)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}

func writeText(w interface{ Write([]byte) (int, error) }, s *DebugSnapshot) {
	p := &s.Pipeline
	fmt.Fprintf(w, "ingest: %d datagrams -> %d records -> %d reports (%d windows)\n",
		p.Datagrams, p.Records, p.Reports, p.Tracker.Windows)
	fmt.Fprintf(w, "dropped: %d datagrams (decode queue), %d records (track queue); %d decode errors\n",
		p.DroppedDecode, p.DroppedTrack, p.DecodeErrors)
	fmt.Fprintf(w, "orphans: %d records recovered, %d sets dropped\n",
		p.OrphanRecords, p.OrphanDropped)
	t := &p.Tracker
	fmt.Fprintf(w, "tracker: %d flows (%d evicted, %d dropped), %d rtt samples, %d retransmits, %d unmatched acks, watermark %dms\n",
		t.Flows, t.FlowsEvicted, t.FlowsDropped, t.RTTSamples, t.Retransmits, t.AcksUnmatched, t.WatermarkMillis)
	for _, ps := range p.Paths {
		fmt.Fprintf(w, "  %-24s %3d flows  srtt %7.2fms  min %7.2fms  (%d samples)\n",
			ps.Path, ps.Flows, ps.SRTTMs, ps.MinRTTMs, ps.RTTSamples)
	}
	if c := s.Collector; c != nil {
		fmt.Fprintf(w, "collector: %d datagrams, %d sessions (%d evicted), %d errors, orphans %d buffered / %d recovered / %d dropped, %d malformed\n",
			c.Datagrams, c.Sessions, c.EvictedSessions, c.Errors,
			c.OrphanBuffered, c.OrphanRecovered, c.OrphanDropped, c.Malformed)
	}
}
