package ingest

import (
	"net/netip"
	"testing"

	"repro/internal/ipfix"
	"repro/internal/ipfix/synth"
	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// TestPassiveReconstructionMatchesSimTruth closes the loop against the
// simulator: a dumbbell run produces per-flow ground truth (the probe's
// SRTT series and the senders' retransmit counts); synthetic IPFIX is
// generated from those series as an egress exporter would have seen the
// flows; and the passive tracker, fed only the IPFIX, must reconstruct
// SRTT and loss within tolerance of what the simulator actually did.
func TestPassiveReconstructionMatchesSimTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := workload.Run(workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(3),
		LongRunning: true,
		Duration:    20 * sim.Second,
		Warmup:      2 * sim.Second,
		Seed:        42,
		CC: func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
		},
		ProbeInterval: 100 * sim.Millisecond,
	})
	dump := res.Probe.Dump()
	if len(dump.Flows) != 3 {
		t.Fatalf("want 3 probed flows, got %d", len(dump.Flows))
	}

	// Simulated ground truth: mean instantaneous SRTT per flow, and the
	// aggregate retransmit fraction across the run.
	var totRetrans, totPackets uint64
	for _, f := range res.Flows {
		totRetrans += uint64(f.Retransmits)
		totPackets += uint64(f.PacketsSent)
	}
	simLoss := float64(totRetrans) / float64(totPackets)

	sink := newRecordingSink()
	cfg, err := Config{Sink: sink, WindowMillis: 1000}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(cfg)

	path := phi.PathKey("100.77.0.0/24")
	var wantSRTTMs []float64
	for i, series := range dump.Flows {
		key := ipfix.FlowKey{
			Src:     netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + i)}),
			Dst:     netip.AddrFrom4([4]byte{100, 77, 0, byte(10 + i)}),
			SrcPort: 443, DstPort: uint16(50000 + i),
		}
		// The exporter's view of this flow: one sampled packet per probe
		// interval, acked one (instantaneous) SRTT later, with the sim's
		// own loss fraction planted as retransmissions.
		recs := synth.RecordsFromFlowSamples(key, series.Samples, simLoss, 1460, int64(i+1))
		for j := range recs {
			tr.observe(&recs[j])
		}
		var sum float64
		n := 0
		for _, s := range series.Samples {
			if s.SRTT > 0 {
				sum += s.SRTT.Milliseconds()
				n++
			}
		}
		if n == 0 {
			t.Fatalf("flow %d: no SRTT samples in probe", i)
		}
		wantSRTTMs = append(wantSRTTMs, sum/float64(n))
	}
	tr.flush()

	// Every flow must be tracked on the shared path, and the per-path
	// SRTT must sit within 20% of the simulated mean (quantization to
	// whole milliseconds plus EWMA smoothing account for the slack).
	sums := tr.pathSummaries()
	if len(sums) != 1 || sums[0].Path != string(path) {
		t.Fatalf("paths = %+v, want exactly %s", sums, path)
	}
	var wantMean float64
	for _, w := range wantSRTTMs {
		wantMean += w
	}
	wantMean /= float64(len(wantSRTTMs))
	got := sums[0].SRTTMs
	if got < wantMean*0.8 || got > wantMean*1.2 {
		t.Errorf("reconstructed SRTT %.2fms, simulated mean %.2fms (flows %v)",
			got, wantMean, wantSRTTMs)
	}

	// Loss: the tracker's retransmit fraction must track the planted
	// (simulated) fraction. The plant is Bernoulli per sample, so allow
	// generous slack on small counts.
	snap := tr.stats
	if totRetrans > 0 {
		if snap.Retransmits == 0 {
			t.Errorf("sim retransmitted %d packets but tracker inferred none", totRetrans)
		}
		inferred := float64(snap.Retransmits) / float64(snap.RTTSamples+snap.Retransmits)
		if inferred > simLoss*3+0.02 {
			t.Errorf("inferred loss %.4f far above simulated %.4f", inferred, simLoss)
		}
	}

	// And the reports reached the sink with usable values.
	rep, ok := sink.lastProgress(path)
	if !ok {
		t.Fatal("no report emitted")
	}
	if rep.AvgRTT <= 0 || rep.Source != phi.SourcePassive {
		t.Errorf("report %+v lacks passive RTT evidence", rep)
	}
	if rep.AvgRTT < sim.Milliseconds(wantMean*0.5) || rep.AvgRTT > sim.Milliseconds(wantMean*2) {
		t.Errorf("reported AvgRTT %v implausible vs simulated %vms", rep.AvgRTT, wantMean)
	}
}
