// Package ingest is the paper's production measurement story (Section
// 2.1) turned into a pipeline: the provider already watches its egress
// with sampled IPFIX export, so per-path congestion context can be
// recovered passively — no sender cooperation anywhere — and fed into
// the same context server the cooperative protocol fills.
//
// The pipeline is an ETL over datagrams:
//
//	UDP socket -> decode -> track -> report
//
// Decode turns datagrams into flow records (per-session RFC 7011
// decoders, reusing internal/ipfix). Track reconstructs per-flow TCP
// state from the sampled records — sequence/ack matching yields RTT
// samples, non-advancing sequence numbers count retransmissions, octet
// deltas give throughput — and aggregates it per path in sliced time
// windows. Report folds each window into phi reports tagged
// phi.SourcePassive, so the server can weigh inferred evidence
// differently from sender self-reports (ServerConfig.PassiveWeight).
//
// Stages are connected by bounded queues; under overload the pipeline
// sheds load by dropping at stage boundaries and counting every drop
// (phi_ingest_dropped_total, /debug/ingest) rather than queueing
// without bound. Synchronous mode (Config.Synchronous) runs the whole
// pipeline inline on the caller's goroutine for deterministic tests and
// benchmarks.
package ingest

import (
	"fmt"

	"repro/internal/ipfix"
	"repro/internal/phi"
)

// ReportSink is where reconstructed context goes: the report half of a
// context server. Both phi.Server and cluster.Frontend satisfy it.
type ReportSink interface {
	ReportStart(path phi.PathKey) error
	ReportEnd(path phi.PathKey, r phi.Report) error
	ReportProgress(path phi.PathKey, r phi.Report) error
}

// Config tunes the pipeline.
type Config struct {
	// Sink receives the passive reports. Required.
	Sink ReportSink

	// PathKey maps a flow record to the path whose context it informs.
	// Default: the destination /24 (the paper's spatial granularity).
	PathKey func(*ipfix.FlowRecord) string

	// SampleN is the exporter's 1-in-N packet sampling rate; observed
	// byte counts are scaled back up by it (default 1).
	SampleN int

	// WindowMillis slices time for per-path aggregation: one passive
	// report per path per window (default 5000). The clock is the
	// record stream's own observation timestamps (the watermark), so
	// replays behave identically to live feeds.
	WindowMillis uint64

	// IdleTimeoutMillis evicts a flow unseen for this long, retiring
	// its ReportStart registration (default 15000).
	IdleTimeoutMillis uint64

	// MaxFlows bounds the tracker's flow table; new flows beyond it are
	// dropped and counted (default 65536).
	MaxFlows int

	// QueueLen bounds each inter-stage queue (default 1024 datagrams /
	// record batches).
	QueueLen int

	// Synchronous disables the stage goroutines: Process and FlushAll
	// run the whole pipeline inline, deterministically.
	Synchronous bool

	// Metrics is the optional telemetry surface (nil = uninstrumented).
	Metrics *Metrics
}

func (c Config) withDefaults() (Config, error) {
	if c.Sink == nil {
		return c, fmt.Errorf("ingest: Config.Sink is required")
	}
	if c.PathKey == nil {
		c.PathKey = func(r *ipfix.FlowRecord) string { return r.DstSubnet24().String() }
	}
	if c.SampleN <= 0 {
		c.SampleN = 1
	}
	if c.WindowMillis == 0 {
		c.WindowMillis = 5000
	}
	if c.IdleTimeoutMillis == 0 {
		c.IdleTimeoutMillis = 15000
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 65536
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	return c, nil
}
