package ingest

import "repro/internal/telemetry"

// Metrics is the pipeline's telemetry surface. All fields are nil-safe
// handles; a nil *Metrics disables instrumentation entirely (the hot
// path then pays one branch per stage).
type Metrics struct {
	// Datagrams counts export datagrams fed in; Records counts decoded
	// flow records; Reports counts passive reports emitted to the sink;
	// Windows counts aggregation flushes.
	Datagrams *telemetry.Counter
	Records   *telemetry.Counter
	Reports   *telemetry.Counter
	Windows   *telemetry.Counter
	// DroppedDecode and DroppedTrack count load shed at each stage
	// boundary under overload (datagrams and records respectively).
	DroppedDecode *telemetry.Counter
	DroppedTrack  *telemetry.Counter
	// DecodeErrors counts undecodable datagrams; OrphanRecords counts
	// records recovered from data sets that arrived before their
	// template (the UDP reorder path).
	DecodeErrors  *telemetry.Counter
	OrphanRecords *telemetry.Counter
	// Flows tracks the live reconstructed-flow table size.
	Flows *telemetry.Gauge
}

// NewMetrics registers the ingest metric set on reg. A nil registry
// yields nil, so callers can wire unconditionally.
func NewMetrics(reg *telemetry.Registry, labels telemetry.Labels) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Datagrams:     reg.Counter("phi_ingest_datagrams_total", "IPFIX datagrams received", labels),
		Records:       reg.Counter("phi_ingest_records_total", "flow records decoded", labels),
		Reports:       reg.Counter("phi_ingest_reports_total", "passive reports emitted", labels),
		Windows:       reg.Counter("phi_ingest_windows_total", "aggregation windows flushed", labels),
		DroppedDecode: reg.Counter("phi_ingest_dropped_datagrams_total", "datagrams shed at the decode queue", labels),
		DroppedTrack:  reg.Counter("phi_ingest_dropped_records_total", "records shed at the track queue", labels),
		DecodeErrors:  reg.Counter("phi_ingest_decode_errors_total", "undecodable datagrams", labels),
		OrphanRecords: reg.Counter("phi_ipfix_orphan_records_total", "records recovered from template-less data sets", labels),
		Flows:         reg.Gauge("phi_ingest_flows", "live reconstructed TCP flows", labels),
	}
}
