package ingest

import (
	"net/netip"
	"sync"
	"testing"

	"repro/internal/ipfix"
	"repro/internal/phi"
	"repro/internal/sim"
)

// recordingSink captures every report for precise assertions.
type recordingSink struct {
	mu       sync.Mutex
	starts   map[phi.PathKey]int
	ends     map[phi.PathKey]int
	progress map[phi.PathKey][]phi.Report
}

func newRecordingSink() *recordingSink {
	return &recordingSink{
		starts:   make(map[phi.PathKey]int),
		ends:     make(map[phi.PathKey]int),
		progress: make(map[phi.PathKey][]phi.Report),
	}
}

func (s *recordingSink) ReportStart(path phi.PathKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.starts[path]++
	return nil
}

func (s *recordingSink) ReportEnd(path phi.PathKey, r phi.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ends[path]++
	return nil
}

func (s *recordingSink) ReportProgress(path phi.PathKey, r phi.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.progress[path] = append(s.progress[path], r)
	return nil
}

func (s *recordingSink) lastProgress(path phi.PathKey) (phi.Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.progress[path]
	if len(rs) == 0 {
		return phi.Report{}, false
	}
	return rs[len(rs)-1], true
}

func testKey() ipfix.FlowKey {
	return ipfix.FlowKey{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("100.1.2.3"),
		SrcPort: 443, DstPort: 50000,
	}
}

func dataRec(key ipfix.FlowKey, seq uint32, atMs uint64) ipfix.FlowRecord {
	return ipfix.FlowRecord{
		Key: key, Octets: 1460, Packets: 1,
		Seq: seq, Flags: ipfix.FlagACK | ipfix.FlagPSH,
		ObsMillis: atMs, HasTCP: true,
	}
}

func ackRec(key ipfix.FlowKey, ack uint32, atMs uint64) ipfix.FlowRecord {
	return ipfix.FlowRecord{
		Key:     ipfix.FlowKey{Src: key.Dst, Dst: key.Src, SrcPort: key.DstPort, DstPort: key.SrcPort},
		Packets: 1, Ack: ack, Flags: ipfix.FlagACK,
		ObsMillis: atMs, HasTCP: true,
	}
}

func newTestTracker(t *testing.T, sink ReportSink) *tracker {
	cfg, err := Config{Sink: sink, WindowMillis: 1000, IdleTimeoutMillis: 5000}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return newTracker(cfg)
}

func TestTrackerRTTFromSeqAckMatch(t *testing.T) {
	sink := newRecordingSink()
	tr := newTestTracker(t, sink)
	key := testKey()
	path := phi.PathKey("100.1.2.0/24")

	// Two segments, acked 30 ms and 34 ms later.
	r1 := dataRec(key, 1000, 100)
	tr.observe(&r1)
	r2 := dataRec(key, 1000+1460, 110)
	tr.observe(&r2)
	a1 := ackRec(key, 1000+1460, 130)
	tr.observe(&a1)
	a2 := ackRec(key, 1000+2*1460, 144)
	tr.observe(&a2)

	if sink.starts[path] != 1 {
		t.Fatalf("starts = %v, want 1 on %s", sink.starts, path)
	}
	if tr.stats.RTTSamples != 2 {
		t.Fatalf("RTTSamples = %d, want 2", tr.stats.RTTSamples)
	}
	tr.flush()
	rep, ok := sink.lastProgress(path)
	if !ok {
		t.Fatal("no progress report emitted")
	}
	if rep.Source != phi.SourcePassive {
		t.Errorf("report source = %v, want passive", rep.Source)
	}
	wantAvg := sim.Milliseconds(32) // (30 + 34) / 2
	if rep.AvgRTT != wantAvg {
		t.Errorf("AvgRTT = %v, want %v", rep.AvgRTT, wantAvg)
	}
	if rep.MinRTT != sim.Milliseconds(30) {
		t.Errorf("MinRTT = %v, want 30ms", rep.MinRTT)
	}
	if rep.Bytes != 2*1460 {
		t.Errorf("Bytes = %d, want %d", rep.Bytes, 2*1460)
	}
	if rep.LossRate != 0 {
		t.Errorf("LossRate = %v, want 0", rep.LossRate)
	}
}

func TestTrackerRetransmitsAndKarn(t *testing.T) {
	sink := newRecordingSink()
	tr := newTestTracker(t, sink)
	key := testKey()

	r1 := dataRec(key, 1000, 100)
	tr.observe(&r1)
	dup := dataRec(key, 1000, 150) // same seq again: retransmission
	tr.observe(&dup)
	// The (ambiguous) ack for the retransmitted segment must not become
	// an RTT sample (Karn's rule).
	a := ackRec(key, 1000+1460, 180)
	tr.observe(&a)

	if tr.stats.Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", tr.stats.Retransmits)
	}
	if tr.stats.RTTSamples != 0 {
		t.Fatalf("RTTSamples = %d, want 0 (Karn)", tr.stats.RTTSamples)
	}
	tr.watermark = 1200
	tr.flush()
	rep, _ := sink.lastProgress(phi.PathKey("100.1.2.0/24"))
	if rep.LossRate != 0.5 { // 1 retransmit / 2 data packets
		t.Errorf("LossRate = %v, want 0.5", rep.LossRate)
	}
}

func TestTrackerSampleScaling(t *testing.T) {
	sink := newRecordingSink()
	cfg, err := Config{Sink: sink, SampleN: 4096, WindowMillis: 1000}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(cfg)
	r := dataRec(testKey(), 1000, 100)
	tr.observe(&r)
	tr.flush()
	rep, _ := sink.lastProgress(phi.PathKey("100.1.2.0/24"))
	if rep.Bytes != 1460*4096 {
		t.Errorf("Bytes = %d, want sampled bytes scaled by 4096", rep.Bytes)
	}
}

func TestTrackerIdleEviction(t *testing.T) {
	sink := newRecordingSink()
	tr := newTestTracker(t, sink)
	key := testKey()
	path := phi.PathKey("100.1.2.0/24")

	r := dataRec(key, 1000, 100)
	tr.observe(&r)
	// Another flow keeps the clock moving past the idle timeout.
	other := testKey()
	other.SrcPort = 999
	for ms := uint64(1000); ms <= 6000; ms += 1000 {
		o := dataRec(other, uint32(ms), ms)
		tr.observe(&o)
	}
	tr.flush()
	if sink.ends[path] != 1 {
		t.Fatalf("ends = %v, want idle flow retired on %s", sink.ends, path)
	}
	if tr.stats.FlowsEvicted != 1 {
		t.Errorf("FlowsEvicted = %d, want 1", tr.stats.FlowsEvicted)
	}
	if len(tr.flows) != 1 {
		t.Errorf("flow table = %d, want 1 (the live flow)", len(tr.flows))
	}
}

func TestTrackerMaxFlowsDrops(t *testing.T) {
	sink := newRecordingSink()
	cfg, err := Config{Sink: sink, MaxFlows: 2, WindowMillis: 1000}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(cfg)
	for port := uint16(1); port <= 5; port++ {
		key := testKey()
		key.SrcPort = port
		r := dataRec(key, 1000, 100)
		tr.observe(&r)
	}
	if len(tr.flows) != 2 {
		t.Errorf("flow table = %d, want capped at 2", len(tr.flows))
	}
	if tr.stats.FlowsDropped != 3 {
		t.Errorf("FlowsDropped = %d, want 3", tr.stats.FlowsDropped)
	}
}

func TestTrackerThroughputOnlyRecords(t *testing.T) {
	// Aggregate-template records (no TCP fields) still contribute byte
	// evidence — the pipeline degrades gracefully to throughput-only.
	sink := newRecordingSink()
	tr := newTestTracker(t, sink)
	r := ipfix.FlowRecord{Key: testKey(), Octets: 50_000, Packets: 40, ObsMillis: 100}
	tr.observe(&r)
	tr.flush()
	rep, ok := sink.lastProgress(phi.PathKey("100.1.2.0/24"))
	if !ok || rep.Bytes != 50_000 {
		t.Fatalf("throughput-only report = %+v (ok=%v), want 50000 bytes", rep, ok)
	}
	if rep.AvgRTT != 0 {
		t.Errorf("AvgRTT = %v, want 0 without TCP fields", rep.AvgRTT)
	}
}

func TestTrackerPendingSeqBound(t *testing.T) {
	sink := newRecordingSink()
	tr := newTestTracker(t, sink)
	key := testKey()
	for i := 0; i < maxPendingSeqs*3; i++ {
		r := dataRec(key, uint32(1000+i*1460), uint64(100+i))
		tr.observe(&r)
	}
	f := tr.flows[key]
	if len(f.seqs) > maxPendingSeqs {
		t.Errorf("pending seqs = %d, bound %d", len(f.seqs), maxPendingSeqs)
	}
}
