package ingest

import (
	"sort"

	"repro/internal/ipfix"
	"repro/internal/phi"
	"repro/internal/sim"
)

// maxPendingSeqs bounds the per-flow list of in-flight sequence numbers
// awaiting their ack; beyond it the oldest is forgotten (its RTT sample
// is lost, nothing else).
const maxPendingSeqs = 64

// seqEntry is one sampled data packet awaiting its cumulative ack:
// expAck is the ack value that acknowledges it (seq + payload), atMs
// when it was observed.
type seqEntry struct {
	expAck uint32
	atMs   uint64
}

// flowState is the reconstructed state of one observed TCP flow (keyed
// by its data direction).
type flowState struct {
	path     string
	lastSeen uint64
	highNext uint32 // highest seq+payload observed
	seenData bool
	seqs     []seqEntry
	srttMs   float64
	minRTTMs float64
	rttCount uint64 // lifetime RTT samples
	// Window accumulators, reset by flush.
	winOctets   uint64
	winPackets  uint64
	winRetrans  uint64
	winRTTSumMs float64
	winRTTCount uint64
}

// TrackerStats are the tracker's lifetime counters.
type TrackerStats struct {
	// Flows is the live flow-table size; FlowsDropped counts flows
	// refused at the MaxFlows cap; FlowsEvicted counts idle evictions.
	Flows        int    `json:"flows"`
	FlowsDropped uint64 `json:"flows_dropped"`
	FlowsEvicted uint64 `json:"flows_evicted"`
	// RTTSamples counts sequence/ack matches; AcksUnmatched counts acks
	// whose data direction was never seen; Retransmits counts observed
	// non-advancing sequence numbers.
	RTTSamples    uint64 `json:"rtt_samples"`
	AcksUnmatched uint64 `json:"acks_unmatched"`
	Retransmits   uint64 `json:"retransmits"`
	// Reports counts passive reports emitted; Windows counts flushes.
	Reports uint64 `json:"reports"`
	Windows uint64 `json:"windows"`
	// WatermarkMillis is the stream's own clock: the highest observation
	// timestamp seen.
	WatermarkMillis uint64 `json:"watermark_millis"`
}

// tracker reconstructs per-flow TCP state from sampled flow records and
// aggregates it per path. It is not safe for concurrent use — the
// pipeline gives it a single goroutine.
type tracker struct {
	cfg       Config
	flows     map[ipfix.FlowKey]*flowState
	watermark uint64
	lastFlush uint64
	stats     TrackerStats
}

func newTracker(cfg Config) *tracker {
	return &tracker{cfg: cfg, flows: make(map[ipfix.FlowKey]*flowState)}
}

func reverse(k ipfix.FlowKey) ipfix.FlowKey {
	return ipfix.FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// seqLE reports a <= b in 32-bit sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// observe folds one record in. Data records (payload present) advance
// the flow's sequence state; pure acks close the loop into RTT samples.
func (t *tracker) observe(r *ipfix.FlowRecord) {
	if r.ObsMillis > t.watermark {
		t.watermark = r.ObsMillis
		if t.stats.WatermarkMillis < t.watermark {
			t.stats.WatermarkMillis = t.watermark
		}
	}
	if r.HasTCP && r.Octets == 0 && r.Flags&ipfix.FlagACK != 0 {
		t.observeAck(r)
		return
	}
	t.observeData(r)
}

func (t *tracker) observeData(r *ipfix.FlowRecord) {
	f, ok := t.flows[r.Key]
	if !ok {
		if len(t.flows) >= t.cfg.MaxFlows {
			t.stats.FlowsDropped++
			return
		}
		f = &flowState{path: t.cfg.PathKey(r)}
		t.flows[r.Key] = f
		t.cfg.Sink.ReportStart(phi.PathKey(f.path))
	}
	f.lastSeen = t.watermark
	f.winOctets += r.Octets
	f.winPackets += r.Packets
	if !r.HasTCP {
		// Aggregate-template record: throughput evidence only.
		return
	}
	expAck := r.Seq + uint32(r.Octets)
	if f.seenData && seqLE(expAck, f.highNext) {
		// The sequence number did not advance: a retransmission (or a
		// reordered duplicate — indistinguishable here, and rare at
		// 1-in-N sampling). Karn's rule: forget the pending entry so the
		// ambiguous ack cannot produce a bogus RTT sample.
		f.winRetrans++
		t.stats.Retransmits++
		for i, e := range f.seqs {
			if e.expAck == expAck {
				f.seqs = append(f.seqs[:i], f.seqs[i+1:]...)
				break
			}
		}
		return
	}
	f.seenData = true
	f.highNext = expAck
	if len(f.seqs) >= maxPendingSeqs {
		f.seqs = f.seqs[1:]
	}
	f.seqs = append(f.seqs, seqEntry{expAck: expAck, atMs: r.ObsMillis})
}

func (t *tracker) observeAck(r *ipfix.FlowRecord) {
	f, ok := t.flows[reverse(r.Key)]
	if !ok {
		t.stats.AcksUnmatched++
		return
	}
	f.lastSeen = t.watermark
	matched := false
	var sentAt uint64
	keep := f.seqs[:0]
	for _, e := range f.seqs {
		if e.expAck == r.Ack {
			matched, sentAt = true, e.atMs
		}
		if seqLE(e.expAck, r.Ack) {
			continue // cumulatively acknowledged: retire
		}
		keep = append(keep, e)
	}
	f.seqs = keep
	if !matched || r.ObsMillis < sentAt {
		return
	}
	rttMs := float64(r.ObsMillis - sentAt)
	if f.minRTTMs == 0 || rttMs < f.minRTTMs {
		f.minRTTMs = rttMs
	}
	if f.rttCount == 0 {
		f.srttMs = rttMs
	} else {
		f.srttMs += (rttMs - f.srttMs) / 8 // RFC 6298 alpha = 1/8
	}
	f.rttCount++
	f.winRTTSumMs += rttMs
	f.winRTTCount++
	t.stats.RTTSamples++
}

// due reports whether a window has elapsed on the stream clock.
func (t *tracker) due() bool {
	return t.watermark >= t.lastFlush+t.cfg.WindowMillis
}

// pathAgg accumulates one path's window across its flows.
type pathAgg struct {
	bytes    uint64
	packets  uint64
	retrans  uint64
	rttSumMs float64
	rttCount uint64
	minRTTMs float64
}

// flush aggregates the elapsed window per path, reports it, and evicts
// idle flows. It returns the number of reports emitted.
func (t *tracker) flush() int {
	t.lastFlush = t.watermark
	t.stats.Windows++
	paths := make(map[string]*pathAgg)
	for key, f := range t.flows {
		if f.winPackets > 0 || f.winRTTCount > 0 {
			a, ok := paths[f.path]
			if !ok {
				a = &pathAgg{}
				paths[f.path] = a
			}
			a.bytes += f.winOctets * uint64(t.cfg.SampleN)
			a.packets += f.winPackets
			a.retrans += f.winRetrans
			a.rttSumMs += f.winRTTSumMs
			a.rttCount += f.winRTTCount
			if f.minRTTMs > 0 && (a.minRTTMs == 0 || f.minRTTMs < a.minRTTMs) {
				a.minRTTMs = f.minRTTMs
			}
			f.winOctets, f.winPackets, f.winRetrans = 0, 0, 0
			f.winRTTSumMs, f.winRTTCount = 0, 0
		}
		if f.lastSeen+t.cfg.IdleTimeoutMillis <= t.watermark {
			delete(t.flows, key)
			t.stats.FlowsEvicted++
			// Retire the start registration; the window's byte evidence
			// was already folded in above, so the final report is empty.
			t.cfg.Sink.ReportEnd(phi.PathKey(f.path), phi.Report{Source: phi.SourcePassive})
			t.stats.Reports++
		}
	}
	emitted := 0
	for path, a := range paths {
		r := phi.Report{
			Bytes:    int64(a.bytes),
			Duration: sim.Milliseconds(float64(t.cfg.WindowMillis)),
			Source:   phi.SourcePassive,
		}
		if a.rttCount > 0 {
			r.AvgRTT = sim.Milliseconds(a.rttSumMs / float64(a.rttCount))
		}
		if a.minRTTMs > 0 {
			r.MinRTT = sim.Milliseconds(a.minRTTMs)
		}
		if a.packets > 0 {
			r.LossRate = float64(a.retrans) / float64(a.packets)
		}
		t.cfg.Sink.ReportProgress(phi.PathKey(path), r)
		t.stats.Reports++
		emitted++
	}
	t.stats.Flows = len(t.flows)
	return emitted
}

// PathSummary is one path's reconstructed state, for /debug/ingest.
type PathSummary struct {
	Path     string  `json:"path"`
	Flows    int     `json:"flows"`
	SRTTMs   float64 `json:"srtt_ms"`
	MinRTTMs float64 `json:"min_rtt_ms"`
	// RTTSamples is the lifetime sample count across the path's flows.
	RTTSamples uint64 `json:"rtt_samples"`
}

// pathSummaries snapshots the live flow table grouped by path (SRTT is
// the mean over flows that produced samples), sorted by path for stable
// output.
func (t *tracker) pathSummaries() []PathSummary {
	agg := make(map[string]*PathSummary)
	srttSum := make(map[string]float64)
	srttFlows := make(map[string]int)
	for _, f := range t.flows {
		s, ok := agg[f.path]
		if !ok {
			s = &PathSummary{Path: f.path}
			agg[f.path] = s
		}
		s.Flows++
		if f.rttCount > 0 {
			srttSum[f.path] += f.srttMs
			srttFlows[f.path]++
			s.RTTSamples += f.rttCount
			if f.minRTTMs > 0 && (s.MinRTTMs == 0 || f.minRTTMs < s.MinRTTMs) {
				s.MinRTTMs = f.minRTTMs
			}
		}
	}
	out := make([]PathSummary, 0, len(agg))
	for path, s := range agg {
		if n := srttFlows[path]; n > 0 {
			s.SRTTMs = srttSum[path] / float64(n)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
