package ingest

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ipfix"
	"repro/internal/ipfix/synth"
	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestPipelinePassiveOnlyPopulatesServer is the acceptance E2E: with
// cooperative reports disabled entirely, an IPFIX-only stream drives
// phi.Server to per-path contexts whose RTT matches the planted ground
// truth within tolerance.
func TestPipelinePassiveOnlyPopulatesServer(t *testing.T) {
	var now sim.Time
	server := phi.NewServer(func() sim.Time { return now }, phi.ServerConfig{})
	reg := telemetry.NewRegistry()
	server.SetMetrics(phi.NewServerMetrics(reg, nil))

	stream := synth.NewStream(synth.StreamConfig{
		Flows: 16, Paths: 4, RTTMillisBase: 20, RTTMillisStep: 10,
		LossRate: 0.02, Seed: 7,
	})
	p, err := New(Config{
		Sink:         server,
		Synchronous:  true,
		WindowMillis: 2000,
		Metrics:      NewMetrics(reg, nil),
	})
	if err != nil {
		t.Fatal(err)
	}

	// 10 virtual seconds of traffic through the wire codec, exactly as a
	// collector would receive it.
	enc := ipfix.NewEncoder(1)
	for i := 0; i < 10; i++ {
		msgs, err := stream.Messages(enc, 1000, 400)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			p.Datagram("exporter-1", m)
		}
	}
	p.FlushAll()

	if got := server.PassiveReports(); got == 0 {
		t.Fatal("no passive reports reached the server")
	}
	lookups, reports := server.Stats()
	_ = lookups
	if reports == 0 {
		t.Fatal("no reports folded in")
	}
	// Per-path context: RTT reconstruction within 20%, senders active.
	for i, truth := range stream.Truth() {
		ctx, err := server.Lookup(phi.PathKey(truth.Subnet.String()))
		if err != nil {
			t.Fatal(err)
		}
		if ctx.N == 0 {
			t.Errorf("path %d: no active senders inferred", i)
		}
		if ctx.U <= 0 {
			t.Errorf("path %d: utilization not populated", i)
		}
	}
	// The tracker's own per-path SRTT must match the planted RTTs.
	snap := p.Snapshot()
	if len(snap.Paths) != 4 {
		t.Fatalf("tracked %d paths, want 4", len(snap.Paths))
	}
	for _, ps := range snap.Paths {
		var want float64
		for i, k := range stream.PathKeys() {
			if k == ps.Path {
				want = stream.Truth()[i].RTTMillis
			}
		}
		if want == 0 {
			t.Fatalf("unexpected path %s", ps.Path)
		}
		if ps.SRTTMs < want*0.8 || ps.SRTTMs > want*1.2 {
			t.Errorf("path %s: reconstructed SRTT %.2fms, planted %.0fms", ps.Path, ps.SRTTMs, want)
		}
	}
	if snap.Tracker.RTTSamples == 0 || snap.Tracker.Retransmits == 0 {
		t.Errorf("tracker stats missing evidence: %+v", snap.Tracker)
	}
	// Metrics flowed.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, metric := range []string{
		"phi_ingest_datagrams_total", "phi_ingest_records_total",
		"phi_ingest_reports_total", "phi_server_passive_reports_total",
	} {
		if !strings.Contains(out, metric) {
			t.Errorf("metric %s not exported", metric)
		}
	}
}

// TestPipelineOrphanRecovery feeds a data-only datagram before its
// template through the full pipeline: the records must be recovered and
// counted, not lost.
func TestPipelineOrphanRecovery(t *testing.T) {
	sink := newRecordingSink()
	p, err := New(Config{Sink: sink, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	enc := ipfix.NewEncoder(1)
	stream := synth.NewStream(synth.StreamConfig{Flows: 2, Paths: 1, Seed: 1})
	msgs, err := stream.Messages(enc, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) < 2 {
		t.Fatalf("want >= 2 messages, got %d", len(msgs))
	}
	// Deliver out of order: the data-only second message first.
	p.Datagram("exp", msgs[1])
	if s := p.Snapshot(); s.Records != 0 {
		t.Fatalf("records decoded before template arrived: %d", s.Records)
	}
	p.Datagram("exp", msgs[0])
	s := p.Snapshot()
	if s.OrphanRecords == 0 {
		t.Error("no orphan records counted")
	}
	if s.Records == 0 {
		t.Error("no records recovered")
	}
}

// TestPipelineAsyncDelivers checks the asynchronous path end to end:
// records fed on one goroutine surface as reports after Stop.
func TestPipelineAsyncDelivers(t *testing.T) {
	sink := newRecordingSink()
	p, err := New(Config{Sink: sink, WindowMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	enc := ipfix.NewEncoder(1)
	stream := synth.NewStream(synth.StreamConfig{Flows: 4, Paths: 2, Seed: 2})
	msgs, err := stream.Messages(enc, 3000, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		p.Datagram("exp", m)
	}
	p.Stop()
	s := p.Snapshot()
	if s.Records == 0 {
		t.Fatal("async pipeline decoded nothing")
	}
	if s.Reports == 0 {
		t.Fatal("async pipeline reported nothing")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.progress) == 0 {
		t.Fatal("sink saw no progress reports")
	}
}

// TestPipelineOverloadShedsAndCounts pins the 2x-overload behavior: a
// blocked track stage forces the bounded queue to shed, and every drop
// is counted rather than silently lost or unboundedly queued.
func TestPipelineOverloadShedsAndCounts(t *testing.T) {
	block := make(chan struct{})
	sink := &blockingSink{release: block}
	p, err := New(Config{Sink: sink, QueueLen: 2, WindowMillis: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Each batch crosses a window boundary, so the track stage calls the
	// sink (which blocks) almost immediately; subsequent batches pile
	// into the bounded queue and then shed.
	key := testKey()
	var fed uint64
	for i := 0; i < 200; i++ {
		r := dataRec(key, uint32(1000+i*1460), uint64(100+i*10))
		p.Records([]ipfix.FlowRecord{r})
		fed++
	}
	// Poll the drop counter directly: Snapshot would contend on the
	// tracker mutex the blocked flush is holding.
	deadline := time.After(5 * time.Second)
	for p.trackDrops.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no drops recorded under overload")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(block)
	p.Stop()
	s := p.Snapshot()
	if s.DroppedTrack == 0 {
		t.Fatal("drops vanished")
	}
	if s.DroppedTrack >= fed {
		t.Fatalf("everything dropped (%d of %d): queue never drained", s.DroppedTrack, fed)
	}
}

// blockingSink blocks the first progress report until released.
type blockingSink struct {
	release <-chan struct{}
}

func (s *blockingSink) ReportStart(phi.PathKey) error { return nil }
func (s *blockingSink) ReportEnd(phi.PathKey, phi.Report) error {
	return nil
}
func (s *blockingSink) ReportProgress(phi.PathKey, phi.Report) error {
	<-s.release
	return nil
}

// TestPipelineUDPEndToEnd runs the real socket path: exporter -> UDP ->
// raw collector -> pipeline -> server.
func TestPipelineUDPEndToEnd(t *testing.T) {
	var now sim.Time
	server := phi.NewServer(func() sim.Time { return now }, phi.ServerConfig{})
	p, err := New(Config{Sink: server, WindowMillis: 500})
	if err != nil {
		t.Fatal(err)
	}
	col, err := ipfix.NewRawCollector("127.0.0.1:0", p.Datagram)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	exp, err := ipfix.NewExporter(col.Addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	stream := synth.NewStream(synth.StreamConfig{Flows: 8, Paths: 2, Seed: 3})
	enc := ipfix.NewEncoder(42)
	msgs, err := stream.Messages(enc, 2000, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if err := exp.WriteMessage(m); err != nil {
			t.Fatal(err)
		}
	}
	// UDP on loopback is reliable in practice but asynchronous: poll.
	deadline := time.After(5 * time.Second)
	for server.PassiveReports() == 0 {
		select {
		case <-deadline:
			t.Fatalf("no passive reports after flood; snapshot %+v, collector %+v",
				p.Snapshot(), col.Stats())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Close the socket before stopping the pipeline: Datagram must not
	// be called after Stop (same order the daemons shut down in).
	col.Close()
	p.Stop()
	if cs := col.Stats(); cs.Datagrams == 0 {
		t.Error("collector counted no datagrams")
	}
}

// TestDebugHandlerFormats checks /debug/ingest in both formats.
func TestDebugHandlerFormats(t *testing.T) {
	sink := newRecordingSink()
	p, err := New(Config{Sink: sink, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	r := dataRec(testKey(), 1000, 100)
	p.Records([]ipfix.FlowRecord{r})

	rec := httptest.NewRecorder()
	Handler(p, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ingest", nil))
	var snap DebugSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Pipeline.Tracker.Flows != 1 {
		t.Errorf("snapshot flows = %d, want 1", snap.Pipeline.Tracker.Flows)
	}
	if snap.Collector != nil {
		t.Error("collector section present without a collector")
	}

	rec = httptest.NewRecorder()
	Handler(p, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ingest?format=text", nil))
	if body := rec.Body.String(); !strings.Contains(body, "tracker:") {
		t.Errorf("text format missing tracker line:\n%s", body)
	}
}
