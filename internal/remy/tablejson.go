package remy

import (
	"encoding/json"
	"fmt"
	"io"
)

// Table serialization: a trained rule table is the artifact of the
// (expensive) offline optimization, so it must be shippable — trained
// once, distributed to the sender fleet, loaded at startup. The JSON form
// mirrors the in-memory structure directly.

type actionJSON struct {
	Multiple    float64 `json:"multiple"`
	Increment   float64 `json:"increment"`
	IntersendMs float64 `json:"intersend_ms"`
}

type tableJSON struct {
	SendEdges  []float64    `json:"send_edges,omitempty"`
	AckEdges   []float64    `json:"ack_edges,omitempty"`
	RatioEdges []float64    `json:"ratio_edges,omitempty"`
	UtilEdges  []float64    `json:"util_edges,omitempty"`
	Actions    []actionJSON `json:"actions"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		SendEdges:  t.SendEdges,
		AckEdges:   t.AckEdges,
		RatioEdges: t.RatioEdges,
		UtilEdges:  t.UtilEdges,
	}
	for _, a := range t.Actions {
		out.Actions = append(out.Actions, actionJSON{
			Multiple: a.Multiple, Increment: a.Increment, IntersendMs: a.IntersendMs,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with structural validation.
func (t *Table) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	out := Table{
		SendEdges:  in.SendEdges,
		AckEdges:   in.AckEdges,
		RatioEdges: in.RatioEdges,
		UtilEdges:  in.UtilEdges,
	}
	for _, a := range in.Actions {
		out.Actions = append(out.Actions, Action{
			Multiple: a.Multiple, Increment: a.Increment, IntersendMs: a.IntersendMs,
		})
	}
	if err := out.Validate(); err != nil {
		return fmt.Errorf("remy: rejected table: %w", err)
	}
	*t = out
	return nil
}

// WriteTo serializes the table as indented JSON.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// LoadTable parses and validates a table from JSON.
func LoadTable(r io.Reader) (*Table, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	return &t, nil
}
