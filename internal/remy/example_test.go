package remy_test

import (
	"fmt"

	"repro/internal/remy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// A Remy-Phi controller reading the shared utilization: on an idle
// bottleneck it launches far more aggressively than plain Remy.
func Example() {
	plain := remy.NewCC(remy.DefaultTable(), nil)
	plain.Init(0)

	phi := remy.NewCC(remy.DefaultPhiTable(), remy.StaticUtil(0.1))
	phi.PhiInitialWindow = true
	phi.Init(0)

	fmt.Println("plain remy initial window:", plain.Window())
	fmt.Printf("remy-phi (idle link) initial window: %.1f\n", phi.Window())

	// The table reacts to congestion memory on every ack.
	phi.OnAck(tcp.AckInfo{Now: sim.Second, RTT: 150 * sim.Millisecond, AckedSegments: 1})
	fmt.Println("acts on acks:", phi.Window() != 0)
	// Output:
	// plain remy initial window: 2
	// remy-phi (idle link) initial window: 21.8
	// acts on acks: true
}
