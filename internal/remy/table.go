// Package remy implements a Remy-style machine-learned congestion
// controller (Winstein & Balakrishnan, "TCP ex Machina", cited by the
// paper as [45]): a rule table mapping a small congestion "memory" to
// window/pacing actions, trained offline in the simulator.
//
// The Phi extension of Section 2.2.4 adds one memory dimension — the
// shared bottleneck utilization u obtained from the context server — and
// retrains. Remy-Phi-ideal reads u continuously from an oracle;
// Remy-Phi-practical snapshots u once per connection, exactly the
// lookup-at-start design of Section 2.2.2.
package remy

import (
	"fmt"
	"strings"
)

// Memory is the sender's congestion state, per the Remy paper's features:
// EWMAs of the inter-send and inter-ack times of acknowledged packets and
// the ratio of the latest RTT to the connection minimum. The Phi variant
// adds the shared bottleneck utilization.
type Memory struct {
	// SendEWMAMs is the EWMA of inter-send intervals of acked packets, ms.
	SendEWMAMs float64
	// AckEWMAMs is the EWMA of inter-ack arrival intervals, ms.
	AckEWMAMs float64
	// RTTRatio is lastRTT / minRTT (>= 1 once an RTT is measured).
	RTTRatio float64
	// Util is the shared bottleneck utilization (0 when util-blind).
	Util float64
}

// Action is what a rule prescribes on each ack, following Remy: a window
// multiple m, a window increment b, and a minimum inter-send spacing r.
type Action struct {
	// Multiple scales the congestion window (m).
	Multiple float64
	// Increment adds segments to the window per acked segment (b).
	Increment float64
	// IntersendMs is the minimum spacing between data transmissions (r).
	IntersendMs float64
}

func (a Action) String() string {
	return fmt.Sprintf("m=%.2f b=%.2f r=%.2fms", a.Multiple, a.Increment, a.IntersendMs)
}

// clamp keeps trained actions inside a sane envelope.
func (a Action) clamp() Action {
	if a.Multiple < 0.3 {
		a.Multiple = 0.3
	}
	if a.Multiple > 1.3 {
		a.Multiple = 1.3
	}
	if a.Increment < 0 {
		a.Increment = 0
	}
	if a.Increment > 32 {
		a.Increment = 32
	}
	if a.IntersendMs < 0 {
		a.IntersendMs = 0
	}
	if a.IntersendMs > 50 {
		a.IntersendMs = 50
	}
	return a
}

// Table is the rule table: the memory space is partitioned into a grid by
// per-dimension bin edges, with one Action per cell. An empty UtilEdges
// makes the table utilization-blind (plain Remy).
type Table struct {
	SendEdges  []float64 // ms
	AckEdges   []float64 // ms
	RatioEdges []float64
	UtilEdges  []float64

	// Actions has one entry per cell, indexed by Index.
	Actions []Action
}

// binOf returns the bin index of x given ascending edges: the number of
// edges <= x, in [0, len(edges)].
func binOf(x float64, edges []float64) int {
	i := 0
	for i < len(edges) && x >= edges[i] {
		i++
	}
	return i
}

// Cells returns the number of cells in the table.
func (t *Table) Cells() int {
	return (len(t.SendEdges) + 1) * (len(t.AckEdges) + 1) *
		(len(t.RatioEdges) + 1) * (len(t.UtilEdges) + 1)
}

// Index maps a memory to its cell index.
func (t *Table) Index(m Memory) int {
	idx := binOf(m.SendEWMAMs, t.SendEdges)
	idx = idx*(len(t.AckEdges)+1) + binOf(m.AckEWMAMs, t.AckEdges)
	idx = idx*(len(t.RatioEdges)+1) + binOf(m.RTTRatio, t.RatioEdges)
	idx = idx*(len(t.UtilEdges)+1) + binOf(m.Util, t.UtilEdges)
	return idx
}

// Action returns the action for a memory state.
func (t *Table) Action(m Memory) Action {
	return t.Actions[t.Index(m)]
}

// UsesUtil reports whether the table conditions on shared utilization.
func (t *Table) UsesUtil() bool { return len(t.UtilEdges) > 0 }

// Clone deep-copies the table (training mutates actions).
func (t *Table) Clone() *Table {
	c := *t
	c.Actions = append([]Action(nil), t.Actions...)
	return &c
}

// Validate checks structural invariants.
func (t *Table) Validate() error {
	if len(t.Actions) != t.Cells() {
		return fmt.Errorf("remy: table has %d actions for %d cells", len(t.Actions), t.Cells())
	}
	for _, edges := range [][]float64{t.SendEdges, t.AckEdges, t.RatioEdges, t.UtilEdges} {
		for i := 1; i < len(edges); i++ {
			if edges[i] <= edges[i-1] {
				return fmt.Errorf("remy: non-ascending edges %v", edges)
			}
		}
	}
	for i, a := range t.Actions {
		if a.Multiple <= 0 {
			return fmt.Errorf("remy: cell %d has non-positive multiple", i)
		}
	}
	return nil
}

// FillUniform sets every cell to the same action (the training start
// point) and returns the table.
func (t *Table) FillUniform(a Action) *Table {
	t.Actions = make([]Action, t.Cells())
	for i := range t.Actions {
		t.Actions[i] = a.clamp()
	}
	return t
}

// String renders the table compactly.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "remy table: %d cells (send %v | ack %v | ratio %v | util %v)\n",
		t.Cells(), t.SendEdges, t.AckEdges, t.RatioEdges, t.UtilEdges)
	for i, a := range t.Actions {
		fmt.Fprintf(&b, "  cell %3d: %v\n", i, a)
	}
	return b.String()
}
