package remy

// Seed tables. These encode the qualitative shape a trained table takes on
// the Table 3 topology (retrain with Train or `phi-experiments -run
// table3 -retrain`): the RTT ratio is the primary congestion signal —
// aggressive ramping while the queue is empty, holding in the mid band,
// multiplicative back-off with pacing once the queue builds. The Phi
// variant scales the whole response by the shared utilization: an idle
// bottleneck permits a much more aggressive ramp (that is where the
// paper's throughput gain comes from), a saturated one demands restraint.

// baseEdges are the memory quantization boundaries shared by both tables.
var (
	baseAckEdges   = []float64{10, 40} // ms between acks: fast / medium / slow path
	baseRatioEdges = []float64{1.05, 1.3}
	phiUtilEdges   = []float64{0.45, 0.75}
)

// baseAction is the hand-derived action for an (ackBin, ratioBin) cell.
func baseAction(ackBin, ratioBin int) Action {
	var a Action
	switch ratioBin {
	case 0: // queue empty: ramp at slow-start pace
		a = Action{Multiple: 1.0, Increment: 2.0, IntersendMs: 0}
	case 1: // queue forming: hold
		a = Action{Multiple: 1.0, Increment: 0.3, IntersendMs: 2}
	default: // queue built: back off and pace
		a = Action{Multiple: 0.8, Increment: 0, IntersendMs: 6}
	}
	// Slower ack arrival = slower path: stretch the pacing accordingly.
	a.IntersendMs += float64(ackBin) * 2
	return a.clamp()
}

// phiScale adapts a base action to the shared-utilization band.
func phiScale(a Action, utilBin int) Action {
	switch utilBin {
	case 0: // idle bottleneck: no need to discover bandwidth slowly
		a.Increment = a.Increment*3 + 1
		a.Multiple += 0.02
		a.IntersendMs *= 0.5
	case 2: // saturated: be conservative immediately
		a.Increment *= 0.5
		a.Multiple -= 0.04
		a.IntersendMs = a.IntersendMs*1.5 + 1
	}
	return a.clamp()
}

// DefaultTable returns the utilization-blind (plain Remy) seed table:
// 3 ack bins x 3 ratio bins = 9 cells.
func DefaultTable() *Table {
	t := &Table{AckEdges: baseAckEdges, RatioEdges: baseRatioEdges}
	t.Actions = make([]Action, t.Cells())
	for ack := 0; ack <= len(t.AckEdges); ack++ {
		for ratio := 0; ratio <= len(t.RatioEdges); ratio++ {
			idx := t.Index(Memory{AckEWMAMs: edgeMid(t.AckEdges, ack), RTTRatio: edgeMid(t.RatioEdges, ratio)})
			t.Actions[idx] = baseAction(ack, ratio)
		}
	}
	return t
}

// DefaultPhiTable returns the Phi-extended seed table: the base grid
// crossed with 3 utilization bins = 27 cells.
func DefaultPhiTable() *Table {
	t := &Table{AckEdges: baseAckEdges, RatioEdges: baseRatioEdges, UtilEdges: phiUtilEdges}
	t.Actions = make([]Action, t.Cells())
	for ack := 0; ack <= len(t.AckEdges); ack++ {
		for ratio := 0; ratio <= len(t.RatioEdges); ratio++ {
			for util := 0; util <= len(t.UtilEdges); util++ {
				idx := t.Index(Memory{
					AckEWMAMs: edgeMid(t.AckEdges, ack),
					RTTRatio:  edgeMid(t.RatioEdges, ratio),
					Util:      edgeMid(t.UtilEdges, util),
				})
				t.Actions[idx] = phiScale(baseAction(ack, ratio), util)
			}
		}
	}
	return t
}

// edgeMid returns a representative value inside bin i of edges.
func edgeMid(edges []float64, i int) float64 {
	switch {
	case len(edges) == 0 || i == 0:
		if len(edges) == 0 {
			return 0
		}
		return edges[0] / 2
	case i >= len(edges):
		return edges[len(edges)-1] * 2
	default:
		return (edges[i-1] + edges[i]) / 2
	}
}
