package remy

import (
	"fmt"
	"sort"
)

// Structural refinement: the original Remy does not only optimize whisker
// actions, it also bisects the most-used whisker so the rule table grows
// finer exactly where the congestion signal lives. The grid analogue here
// is edge insertion: splitting a dimension adds one boundary, refining a
// whole slab of cells while preserving the table's function everywhere
// (each new cell inherits the action of the old cell containing it).

// Dimension indexes for refinement.
const (
	DimSend = iota
	DimAck
	DimRatio
	DimUtil
)

// MaxCells bounds table growth during training.
const MaxCells = 256

// binsOf decomposes a cell index into per-dimension bin indexes
// (inverse of Index).
func (t *Table) binsOf(idx int) (send, ack, ratio, util int) {
	nu := len(t.UtilEdges) + 1
	nr := len(t.RatioEdges) + 1
	na := len(t.AckEdges) + 1
	util = idx % nu
	idx /= nu
	ratio = idx % nr
	idx /= nr
	ack = idx % na
	idx /= na
	send = idx
	return
}

// binBounds returns the [lo, hi) bounds of bin i (hi < 0 means unbounded).
func binBounds(edges []float64, i int) (lo, hi float64) {
	if i > 0 {
		lo = edges[i-1]
	}
	if i < len(edges) {
		return lo, edges[i]
	}
	return lo, -1
}

// splitPoint picks where to bisect a bin: the midpoint of a bounded bin,
// double the lower bound of an unbounded one (or 1 from zero).
func splitPoint(lo, hi float64) float64 {
	if hi > 0 {
		return (lo + hi) / 2
	}
	if lo == 0 {
		return 1
	}
	return lo * 2
}

// SplitDim inserts an edge into the given dimension and returns the
// refined table; the original is untouched. Every memory maps to the same
// action before and after. Inserting a duplicate edge returns an
// unchanged clone.
func (t *Table) SplitDim(dim int, edge float64) *Table {
	insert := func(edges []float64) []float64 {
		out := append([]float64(nil), edges...)
		i := sort.SearchFloat64s(out, edge)
		if i < len(out) && out[i] == edge {
			return out
		}
		out = append(out, 0)
		copy(out[i+1:], out[i:])
		out[i] = edge
		return out
	}
	nt := &Table{
		SendEdges:  append([]float64(nil), t.SendEdges...),
		AckEdges:   append([]float64(nil), t.AckEdges...),
		RatioEdges: append([]float64(nil), t.RatioEdges...),
		UtilEdges:  append([]float64(nil), t.UtilEdges...),
	}
	switch dim {
	case DimSend:
		nt.SendEdges = insert(nt.SendEdges)
	case DimAck:
		nt.AckEdges = insert(nt.AckEdges)
	case DimRatio:
		nt.RatioEdges = insert(nt.RatioEdges)
	case DimUtil:
		nt.UtilEdges = insert(nt.UtilEdges)
	default:
		panic(fmt.Sprintf("remy: unknown dimension %d", dim))
	}
	nt.Actions = make([]Action, nt.Cells())
	// Populate each new cell with the old action at a representative
	// memory inside it.
	for s := 0; s <= len(nt.SendEdges); s++ {
		for a := 0; a <= len(nt.AckEdges); a++ {
			for r := 0; r <= len(nt.RatioEdges); r++ {
				for u := 0; u <= len(nt.UtilEdges); u++ {
					m := Memory{
						SendEWMAMs: repr(nt.SendEdges, s),
						AckEWMAMs:  repr(nt.AckEdges, a),
						RTTRatio:   repr(nt.RatioEdges, r),
						Util:       repr(nt.UtilEdges, u),
					}
					nt.Actions[nt.Index(m)] = t.Action(m)
				}
			}
		}
	}
	return nt
}

// repr returns a representative value inside bin i.
func repr(edges []float64, i int) float64 {
	lo, hi := binBounds(edges, i)
	if hi > 0 {
		return (lo + hi) / 2
	}
	if lo == 0 {
		return 0
	}
	return lo * 1.5
}

// SplitHottest refines the table around its most-executed cell: the
// widest dimension of that cell (in relative terms) is bisected. Returns
// the refined table and true, or the original and false when the cell
// cannot be split (table at MaxCells, or no visits).
func (t *Table) SplitHottest(visits []int) (*Table, bool) {
	if t.Cells() >= MaxCells || len(visits) != t.Cells() {
		return t, false
	}
	hot, hotV := -1, 0
	for cell, v := range visits {
		if v > hotV {
			hot, hotV = cell, v
		}
	}
	if hot < 0 {
		return t, false
	}
	sendB, ackB, ratioB, utilB := t.binsOf(hot)
	type cand struct {
		dim   int
		edges []float64
		bin   int
	}
	cands := []cand{
		{DimAck, t.AckEdges, ackB},
		{DimRatio, t.RatioEdges, ratioB},
		{DimSend, t.SendEdges, sendB},
	}
	if t.UsesUtil() {
		cands = append(cands, cand{DimUtil, t.UtilEdges, utilB})
	}
	// Pick the dimension whose hot bin is relatively widest (hi/lo ratio;
	// unbounded bins count as widest).
	bestDim, bestWidth := -1, 0.0
	var bestPoint float64
	for _, c := range cands {
		lo, hi := binBounds(c.edges, c.bin)
		var width float64
		switch {
		case hi < 0:
			width = 1e18 // unbounded: always splittable
		case lo == 0:
			width = hi
		default:
			width = hi / lo
		}
		if width > bestWidth {
			bestWidth = width
			bestDim = c.dim
			bestPoint = splitPoint(lo, hi)
		}
	}
	if bestDim < 0 {
		return t, false
	}
	return t.SplitDim(bestDim, bestPoint), true
}
