package remy

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// UtilMode selects how senders read the shared utilization dimension.
type UtilMode int

// Utilization modes.
const (
	// UtilOff: plain Remy, no shared information.
	UtilOff UtilMode = iota
	// UtilIdeal: continuous, up-to-the-minute utilization (oracle) — the
	// Remy-Phi-ideal row of Table 3, and the mode used during training.
	UtilIdeal
	// UtilPractical: one snapshot per connection at start — the
	// lookup-at-open design of Section 2.2.2 (Remy-Phi-practical).
	UtilPractical
)

func (m UtilMode) String() string {
	switch m {
	case UtilOff:
		return "off"
	case UtilIdeal:
		return "ideal"
	case UtilPractical:
		return "practical"
	default:
		return "unknown"
	}
}

// EvalConfig runs a Remy table against a workload.
type EvalConfig struct {
	// Scenario is the workload template (Table 3: 15 Mbps, 150 ms RTT,
	// 8 senders, exp(100 KB) on / exp(0.5 s) off). CC and OnTopology are
	// overridden.
	Scenario workload.Scenario
	// Mode selects the utilization feed.
	Mode UtilMode
	// Runs is the number of paired repetitions; BaseSeed+i seeds run i.
	Runs     int
	BaseSeed int64
	// ProbeWindow is the trailing window for the ideal oracle (default 1s).
	ProbeWindow sim.Time
}

// EvalResult is the outcome of evaluating one table.
type EvalResult struct {
	// Objective is the mean over runs of ln(throughput/delay), Remy's
	// training objective (log power).
	Objective float64
	// Runs holds the underlying per-run results.
	Runs []workload.Result
	// Visits counts table-cell executions across all runs.
	Visits []int
}

// Evaluate runs the table under the configured workload.
func Evaluate(table *Table, cfg EvalConfig) EvalResult {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.ProbeWindow <= 0 {
		cfg.ProbeWindow = sim.Second
	}
	out := EvalResult{Visits: make([]int, table.Cells())}
	var objs []float64
	for i := 0; i < cfg.Runs; i++ {
		sc := cfg.Scenario
		sc.Seed = cfg.BaseSeed + int64(i)

		var probe *sim.RateProbe
		sc.OnTopology = func(eng *sim.Engine, d *sim.Dumbbell) {
			if cfg.Mode != UtilOff {
				probe = sim.NewRateProbe(eng, d.Bottleneck.Monitor(), 100*sim.Millisecond, cfg.ProbeWindow)
			}
		}
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				var util UtilSource
				switch cfg.Mode {
				case UtilIdeal:
					util = UtilFunc(func() float64 { return probe.Utilization() })
				case UtilPractical:
					util = StaticUtil(probe.Utilization())
				}
				cc := NewCC(table, util)
				cc.PhiInitialWindow = cfg.Mode != UtilOff
				cc.OnCellVisit = func(cell int) { out.Visits[cell]++ }
				return cc
			}
		}
		r := workload.Run(sc)
		out.Runs = append(out.Runs, r)
		objs = append(objs, r.LogPower())
	}
	out.Objective = metrics.Mean(objs)
	return out
}

// TrainConfig drives the offline optimizer.
type TrainConfig struct {
	Eval EvalConfig
	// Iterations is the number of cell-improvement rounds.
	Iterations int
	// AllowSplit also refines the table structure: every third round the
	// most-executed cell's widest dimension is bisected (the grid
	// analogue of Remy's whisker splitting), up to MaxCells.
	AllowSplit bool
	// Log, if set, receives one line per iteration.
	Log func(format string, args ...any)
}

// Train improves a table by Remy-style greedy optimization: in each round,
// evaluate, pick the most-executed cell not improved recently, and try a
// set of perturbed actions for it, keeping the best. Returns the improved
// table and the objective after each iteration.
func Train(start *Table, cfg TrainConfig) (*Table, []float64) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 5
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	table := start.Clone()
	var trace []float64
	recent := make(map[int]int) // cell -> last iteration optimized

	for it := 0; it < cfg.Iterations; it++ {
		base := Evaluate(table, cfg.Eval)
		if cfg.AllowSplit && it%3 == 2 {
			if refined, ok := table.SplitHottest(base.Visits); ok {
				table = refined
				recent = make(map[int]int) // cell indexes changed
				logf("remy train it=%d split -> %d cells", it, table.Cells())
				base = Evaluate(table, cfg.Eval)
			}
		}
		cell := hottestCell(base.Visits, recent, it)
		if cell < 0 {
			trace = append(trace, base.Objective)
			continue
		}
		bestAct, bestScore := table.Actions[cell], base.Objective
		for _, cand := range neighbors(table.Actions[cell]) {
			t2 := table.Clone()
			t2.Actions[cell] = cand
			score := Evaluate(t2, cfg.Eval).Objective
			if score > bestScore {
				bestAct, bestScore = cand, score
			}
		}
		table.Actions[cell] = bestAct
		recent[cell] = it + 1
		trace = append(trace, bestScore)
		logf("remy train it=%d cell=%d action=%v objective=%.4f", it, cell, bestAct, bestScore)
	}
	return table, trace
}

// hottestCell picks the most-visited cell not optimized within the last
// two iterations.
func hottestCell(visits []int, recent map[int]int, it int) int {
	best, bestV := -1, 0
	for cell, v := range visits {
		if v <= bestV {
			continue
		}
		if last, ok := recent[cell]; ok && it-last < 2 {
			continue
		}
		best, bestV = cell, v
	}
	return best
}

// neighbors generates the candidate perturbations of an action.
func neighbors(a Action) []Action {
	cands := []Action{
		{Multiple: a.Multiple, Increment: a.Increment + 1, IntersendMs: a.IntersendMs},
		{Multiple: a.Multiple, Increment: a.Increment - 1, IntersendMs: a.IntersendMs},
		{Multiple: a.Multiple * 1.08, Increment: a.Increment, IntersendMs: a.IntersendMs},
		{Multiple: a.Multiple * 0.92, Increment: a.Increment, IntersendMs: a.IntersendMs},
		{Multiple: a.Multiple, Increment: a.Increment, IntersendMs: a.IntersendMs*2 + 0.5},
		{Multiple: a.Multiple, Increment: a.Increment, IntersendMs: a.IntersendMs / 2},
	}
	out := cands[:0]
	for _, c := range cands {
		c = c.clamp()
		if c != a {
			out = append(out, c)
		}
	}
	return out
}
