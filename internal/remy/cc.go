package remy

import (
	"repro/internal/sim"
	"repro/internal/tcp"
)

// UtilSource supplies the shared bottleneck utilization to a Remy-Phi
// sender. Plain Remy uses nil.
type UtilSource interface {
	// Util returns the current utilization estimate in [0, 1].
	Util() float64
}

// UtilFunc adapts a closure to UtilSource — the "ideal" mode wraps a live
// oracle, e.g. the bottleneck link monitor.
type UtilFunc func() float64

// Util implements UtilSource.
func (f UtilFunc) Util() float64 { return f() }

// StaticUtil is a snapshot taken once (at connection start): the
// "practical" mode of Section 2.2.2.
type StaticUtil float64

// Util implements UtilSource.
func (s StaticUtil) Util() float64 { return float64(s) }

// memoryAlpha is the EWMA gain for the send/ack interarrival features
// (1/8, as in the Remy reference implementation).
const memoryAlpha = 0.125

// CC is the Remy congestion controller: it executes a Table. It
// implements tcp.CongestionControl.
type CC struct {
	Table *Table
	// Util supplies the Phi memory dimension; nil reads as 0 and the
	// table should then be util-blind.
	Util UtilSource
	// InitialWindow is the starting window in segments (default 2).
	InitialWindow float64
	// PhiInitialWindow, when set (and Util is non-nil), maps the shared
	// utilization read at connection start to the initial window: an idle
	// bottleneck lets a new flow start near its fair share instead of
	// discovering it from 2 segments — the Phi analogue of tuning Cubic's
	// windowInit_ from shared state.
	PhiInitialWindow bool
	// OnCellVisit, if set, observes each table-cell execution (used by
	// the trainer to find hot cells).
	OnCellVisit func(cell int)

	cwnd      float64
	intersend sim.Time

	minRTT   sim.Time
	mem      Memory
	lastAck  sim.Time
	lastSent sim.Time
	seenAck  bool
}

// NewCC returns a controller for the given table (which must be valid).
func NewCC(table *Table, util UtilSource) *CC {
	if err := table.Validate(); err != nil {
		panic(err)
	}
	return &CC{Table: table, Util: util}
}

// Name implements tcp.CongestionControl.
func (c *CC) Name() string {
	if c.Table.UsesUtil() {
		return "remy-phi"
	}
	return "remy"
}

// Init implements tcp.CongestionControl.
func (c *CC) Init(now sim.Time) {
	iw := c.InitialWindow
	if iw <= 0 {
		iw = 2
	}
	if c.PhiInitialWindow && c.Util != nil {
		u := c.Util.Util()
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		// 2 segments when saturated, up to 24 when idle.
		boost := iw + (1-u)*22
		if boost > iw {
			iw = boost
		}
	}
	c.cwnd = iw
	c.intersend = 0
	c.minRTT = 0
	c.mem = Memory{}
	c.seenAck = false
}

// Window implements tcp.CongestionControl.
func (c *CC) Window() float64 { return c.cwnd }

// Ssthresh implements tcp.CongestionControl. Remy has no slow-start
// threshold; report the window.
func (c *CC) Ssthresh() float64 { return c.cwnd }

// PacingInterval implements tcp.CongestionControl.
func (c *CC) PacingInterval() sim.Time { return c.intersend }

// Memory exposes the current memory state (for tests and debugging).
func (c *CC) Memory() Memory { return c.mem }

// OnAck implements tcp.CongestionControl: update the memory features, look
// up the action, apply it.
func (c *CC) OnAck(info tcp.AckInfo) {
	if info.RTT > 0 {
		if c.minRTT == 0 || info.RTT < c.minRTT {
			c.minRTT = info.RTT
		}
		if c.minRTT > 0 {
			c.mem.RTTRatio = float64(info.RTT) / float64(c.minRTT)
		}
	}
	if c.seenAck {
		ackGap := (info.Now - c.lastAck).Milliseconds()
		c.mem.AckEWMAMs = memoryAlpha*ackGap + (1-memoryAlpha)*c.mem.AckEWMAMs
		if info.SentAt > 0 && c.lastSent > 0 {
			sendGap := (info.SentAt - c.lastSent).Milliseconds()
			if sendGap < 0 {
				sendGap = 0
			}
			c.mem.SendEWMAMs = memoryAlpha*sendGap + (1-memoryAlpha)*c.mem.SendEWMAMs
		}
	}
	c.lastAck = info.Now
	if info.SentAt > 0 {
		c.lastSent = info.SentAt
	}
	c.seenAck = true
	if c.Util != nil {
		c.mem.Util = c.Util.Util()
	}

	cell := c.Table.Index(c.mem)
	if c.OnCellVisit != nil {
		c.OnCellVisit(cell)
	}
	act := c.Table.Actions[cell]
	c.cwnd = act.Multiple*c.cwnd + act.Increment*info.AckedSegments
	if c.cwnd < 1 {
		c.cwnd = 1
	}
	if c.cwnd > 4096 {
		c.cwnd = 4096
	}
	c.intersend = sim.Milliseconds(act.IntersendMs)
}

// OnLoss implements tcp.CongestionControl. The Remy rule tables act only
// on acks; we apply a conservative halving so the controller composes
// safely with FIFO drop-tail queues even with an untrained table.
func (c *CC) OnLoss(now sim.Time) {
	c.cwnd /= 2
	if c.cwnd < 1 {
		c.cwnd = 1
	}
}

// OnTimeout implements tcp.CongestionControl.
func (c *CC) OnTimeout(now sim.Time) {
	c.cwnd = 1
	c.mem = Memory{}
	c.seenAck = false
}

var _ tcp.CongestionControl = (*CC)(nil)
