package remy

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// TestTable3Ordering checks the paper's Table 3 shape with the seed
// tables: on the 15 Mbps / 150 ms / 8-sender on-off workload, the log
// power objective orders Remy-Phi (ideal and practical) above plain Remy
// above Cubic, and the Phi variants deliver clearly higher throughput.
func TestTable3Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(8),
		MeanOnBytes: 100_000,
		MeanOffTime: 500 * sim.Millisecond,
		Duration:    60 * sim.Second,
		Warmup:      5 * sim.Second,
	}
	const runs = 3
	const baseSeed = 100

	objective := func(rs []workload.Result) (logP, medThr float64) {
		var objs, thr []float64
		for i := range rs {
			objs = append(objs, rs[i].LogPower())
			thr = append(thr, rs[i].ThroughputsMbps()...)
		}
		return metrics.Mean(objs), metrics.Median(thr)
	}

	var cubicRuns []workload.Result
	for i := 0; i < runs; i++ {
		s := sc
		s.Seed = baseSeed + int64(i)
		s.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
		}
		cubicRuns = append(cubicRuns, workload.Run(s))
	}
	cubicObj, cubicThr := objective(cubicRuns)

	remyObj, remyThr := objective(Evaluate(DefaultTable(),
		EvalConfig{Scenario: sc, Mode: UtilOff, Runs: runs, BaseSeed: baseSeed}).Runs)
	practObj, practThr := objective(Evaluate(DefaultPhiTable(),
		EvalConfig{Scenario: sc, Mode: UtilPractical, Runs: runs, BaseSeed: baseSeed}).Runs)
	idealObj, idealThr := objective(Evaluate(DefaultPhiTable(),
		EvalConfig{Scenario: sc, Mode: UtilIdeal, Runs: runs, BaseSeed: baseSeed}).Runs)

	t.Logf("cubic:     logP=%.3f thr=%.2f", cubicObj, cubicThr)
	t.Logf("remy:      logP=%.3f thr=%.2f", remyObj, remyThr)
	t.Logf("practical: logP=%.3f thr=%.2f", practObj, practThr)
	t.Logf("ideal:     logP=%.3f thr=%.2f", idealObj, idealThr)

	if remyObj <= cubicObj {
		t.Errorf("Remy objective %.3f should beat Cubic %.3f", remyObj, cubicObj)
	}
	if practObj <= remyObj {
		t.Errorf("Remy-Phi-practical %.3f should beat Remy %.3f", practObj, remyObj)
	}
	if idealObj < practObj-0.05 {
		t.Errorf("Remy-Phi-ideal %.3f should be at least Remy-Phi-practical %.3f", idealObj, practObj)
	}
	if practThr < 1.3*remyThr {
		t.Errorf("Phi throughput %.2f should clearly exceed Remy %.2f", practThr, remyThr)
	}
	if idealThr <= cubicThr {
		t.Errorf("ideal throughput %.2f should exceed cubic %.2f", idealThr, cubicThr)
	}
}
