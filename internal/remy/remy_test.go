package remy

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

func TestBinOf(t *testing.T) {
	edges := []float64{10, 40}
	cases := map[float64]int{0: 0, 9.99: 0, 10: 1, 39: 1, 40: 2, 1000: 2}
	for x, want := range cases {
		if got := binOf(x, edges); got != want {
			t.Errorf("binOf(%v) = %d, want %d", x, got, want)
		}
	}
	if binOf(5, nil) != 0 {
		t.Error("binOf with no edges should be 0")
	}
}

func TestTableIndexCoversAllCellsUniquely(t *testing.T) {
	tab := &Table{
		SendEdges:  []float64{5},
		AckEdges:   []float64{10, 40},
		RatioEdges: []float64{1.5},
		UtilEdges:  []float64{0.5},
	}
	tab.FillUniform(Action{Multiple: 1, Increment: 1})
	if tab.Cells() != 2*3*2*2 {
		t.Fatalf("cells = %d, want 24", tab.Cells())
	}
	seen := map[int]bool{}
	for _, send := range []float64{1, 10} {
		for _, ack := range []float64{1, 20, 100} {
			for _, ratio := range []float64{1, 2} {
				for _, util := range []float64{0.1, 0.9} {
					idx := tab.Index(Memory{SendEWMAMs: send, AckEWMAMs: ack, RTTRatio: ratio, Util: util})
					if idx < 0 || idx >= tab.Cells() {
						t.Fatalf("index %d out of range", idx)
					}
					if seen[idx] {
						t.Fatalf("duplicate index %d", idx)
					}
					seen[idx] = true
				}
			}
		}
	}
	if len(seen) != tab.Cells() {
		t.Errorf("covered %d cells of %d", len(seen), tab.Cells())
	}
}

// Property: Index is always in range for arbitrary memories.
func TestTableIndexInRangeProperty(t *testing.T) {
	tab := DefaultPhiTable()
	f := func(send, ack, ratio, util float64) bool {
		idx := tab.Index(Memory{SendEWMAMs: send, AckEWMAMs: ack, RTTRatio: ratio, Util: util})
		return idx >= 0 && idx < tab.Cells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDefaultTablesValid(t *testing.T) {
	for name, tab := range map[string]*Table{"base": DefaultTable(), "phi": DefaultPhiTable()} {
		if err := tab.Validate(); err != nil {
			t.Errorf("%s table invalid: %v", name, err)
		}
	}
	if DefaultTable().UsesUtil() {
		t.Error("base table should be util-blind")
	}
	if !DefaultPhiTable().UsesUtil() {
		t.Error("phi table should use util")
	}
	if DefaultTable().Cells() != 9 || DefaultPhiTable().Cells() != 27 {
		t.Errorf("cells = %d/%d, want 9/27", DefaultTable().Cells(), DefaultPhiTable().Cells())
	}
	if DefaultPhiTable().String() == "" {
		t.Error("empty table string")
	}
}

func TestPhiTableMoreAggressiveWhenIdle(t *testing.T) {
	tab := DefaultPhiTable()
	mem := Memory{AckEWMAMs: 5, RTTRatio: 1.05}
	idle := tab.Action(Memory{AckEWMAMs: mem.AckEWMAMs, RTTRatio: mem.RTTRatio, Util: 0.1})
	busy := tab.Action(Memory{AckEWMAMs: mem.AckEWMAMs, RTTRatio: mem.RTTRatio, Util: 0.9})
	if idle.Increment <= busy.Increment {
		t.Errorf("idle increment %v should exceed busy %v", idle.Increment, busy.Increment)
	}
}

func TestTableValidateCatchesCorruption(t *testing.T) {
	tab := DefaultTable()
	tab.Actions = tab.Actions[:3]
	if tab.Validate() == nil {
		t.Error("short action slice passed validation")
	}
	tab = DefaultTable()
	tab.Actions[0].Multiple = 0
	if tab.Validate() == nil {
		t.Error("zero multiple passed validation")
	}
	tab = DefaultTable()
	tab.RatioEdges = []float64{2, 1}
	if tab.Validate() == nil {
		t.Error("non-ascending edges passed validation")
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	a := DefaultTable()
	b := a.Clone()
	b.Actions[0].Increment = 99
	if a.Actions[0].Increment == 99 {
		t.Error("clone shares action storage")
	}
}

func TestActionClamp(t *testing.T) {
	a := Action{Multiple: 99, Increment: -5, IntersendMs: 1000}.clamp()
	if a.Multiple != 1.3 || a.Increment != 0 || a.IntersendMs != 50 {
		t.Errorf("clamp = %v", a)
	}
}

func TestCCMemoryUpdates(t *testing.T) {
	cc := NewCC(DefaultTable(), nil)
	cc.Init(0)
	if cc.Window() != 2 {
		t.Errorf("initial window = %v", cc.Window())
	}
	// First ack initializes; second computes gaps.
	cc.OnAck(tcp.AckInfo{Now: sim.Second, SentAt: 850 * sim.Millisecond,
		RTT: 150 * sim.Millisecond, AckedSegments: 1})
	cc.OnAck(tcp.AckInfo{Now: sim.Second + 20*sim.Millisecond, SentAt: 870 * sim.Millisecond,
		RTT: 150 * sim.Millisecond, AckedSegments: 1})
	m := cc.Memory()
	if m.AckEWMAMs <= 0 || m.SendEWMAMs <= 0 {
		t.Errorf("EWMAs not updated: %+v", m)
	}
	if m.RTTRatio != 1 {
		t.Errorf("rtt ratio = %v, want 1 (rtt == min)", m.RTTRatio)
	}
	// Inflated RTT raises the ratio.
	cc.OnAck(tcp.AckInfo{Now: sim.Second + 40*sim.Millisecond, SentAt: 880 * sim.Millisecond,
		RTT: 300 * sim.Millisecond, AckedSegments: 1})
	if cc.Memory().RTTRatio != 2 {
		t.Errorf("rtt ratio = %v, want 2", cc.Memory().RTTRatio)
	}
}

func TestCCWindowBounds(t *testing.T) {
	cc := NewCC(DefaultTable(), nil)
	cc.Init(0)
	for i := 0; i < 10000; i++ {
		cc.OnAck(tcp.AckInfo{Now: sim.Time(i) * sim.Millisecond, AckedSegments: 1,
			RTT: 150 * sim.Millisecond})
		if w := cc.Window(); w < 1 || w > 4096 {
			t.Fatalf("window %v out of [1, 4096]", w)
		}
	}
	cc.OnLoss(0)
	if cc.Window() < 1 {
		t.Error("window below 1 after loss")
	}
	cc.OnTimeout(0)
	if cc.Window() != 1 {
		t.Errorf("window after timeout = %v, want 1", cc.Window())
	}
}

func TestCCUtilSources(t *testing.T) {
	cc := NewCC(DefaultPhiTable(), StaticUtil(0.9))
	cc.Init(0)
	cc.OnAck(tcp.AckInfo{Now: sim.Second, AckedSegments: 1, RTT: 150 * sim.Millisecond})
	if cc.Memory().Util != 0.9 {
		t.Errorf("static util = %v", cc.Memory().Util)
	}
	if cc.Name() != "remy-phi" {
		t.Errorf("name = %s", cc.Name())
	}
	val := 0.2
	dyn := NewCC(DefaultPhiTable(), UtilFunc(func() float64 { return val }))
	dyn.Init(0)
	dyn.OnAck(tcp.AckInfo{Now: sim.Second, AckedSegments: 1})
	val = 0.8
	dyn.OnAck(tcp.AckInfo{Now: 2 * sim.Second, AckedSegments: 1})
	if dyn.Memory().Util != 0.8 {
		t.Errorf("dynamic util = %v, want 0.8", dyn.Memory().Util)
	}
	plain := NewCC(DefaultTable(), nil)
	if plain.Name() != "remy" {
		t.Errorf("name = %s", plain.Name())
	}
}

func TestCCVisitHook(t *testing.T) {
	visits := make([]int, DefaultTable().Cells())
	cc := NewCC(DefaultTable(), nil)
	cc.OnCellVisit = func(cell int) { visits[cell]++ }
	cc.Init(0)
	for i := 0; i < 10; i++ {
		cc.OnAck(tcp.AckInfo{Now: sim.Time(i) * sim.Millisecond, AckedSegments: 1})
	}
	total := 0
	for _, v := range visits {
		total += v
	}
	if total != 10 {
		t.Errorf("visits = %d, want 10", total)
	}
}

func table3Scenario(senders int) workload.Scenario {
	return workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(senders),
		MeanOnBytes: 100_000,
		MeanOffTime: 500 * sim.Millisecond,
		Duration:    15 * sim.Second,
		Warmup:      2 * sim.Second,
	}
}

func TestRemyEndToEndInSimulator(t *testing.T) {
	res := Evaluate(DefaultTable(), EvalConfig{
		Scenario: table3Scenario(4), Mode: UtilOff, Runs: 1, BaseSeed: 1,
	})
	if len(res.Runs) != 1 {
		t.Fatal("no runs")
	}
	r := res.Runs[0]
	if len(r.Flows) == 0 || r.AggThroughputMbps() <= 0 {
		t.Fatalf("remy moved no data: %d flows", len(r.Flows))
	}
	visited := 0
	for _, v := range res.Visits {
		if v > 0 {
			visited++
		}
	}
	if visited == 0 {
		t.Error("no table cells visited")
	}
}

func TestRemyPhiModesRun(t *testing.T) {
	for _, mode := range []UtilMode{UtilIdeal, UtilPractical} {
		res := Evaluate(DefaultPhiTable(), EvalConfig{
			Scenario: table3Scenario(4), Mode: mode, Runs: 1, BaseSeed: 2,
		})
		if res.Runs[0].AggThroughputMbps() <= 0 {
			t.Errorf("mode %v moved no data", mode)
		}
	}
	if UtilIdeal.String() != "ideal" || UtilPractical.String() != "practical" || UtilOff.String() != "off" {
		t.Error("mode strings wrong")
	}
	if UtilMode(99).String() != "unknown" {
		t.Error("unknown mode string wrong")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	cfg := EvalConfig{Scenario: table3Scenario(3), Mode: UtilOff, Runs: 2, BaseSeed: 9}
	a := Evaluate(DefaultTable(), cfg)
	b := Evaluate(DefaultTable(), cfg)
	if a.Objective != b.Objective {
		t.Errorf("objective differs: %v vs %v", a.Objective, b.Objective)
	}
}

func TestTrainImprovesOrHolds(t *testing.T) {
	cfg := TrainConfig{
		Eval:       EvalConfig{Scenario: table3Scenario(3), Mode: UtilOff, Runs: 1, BaseSeed: 4},
		Iterations: 2,
	}
	before := Evaluate(DefaultTable(), cfg.Eval).Objective
	trained, trace := Train(DefaultTable(), cfg)
	if len(trace) != 2 {
		t.Fatalf("trace length = %d", len(trace))
	}
	after := Evaluate(trained, cfg.Eval).Objective
	if after < before-1e-9 {
		t.Errorf("training made things worse: %v -> %v", before, after)
	}
	if err := trained.Validate(); err != nil {
		t.Errorf("trained table invalid: %v", err)
	}
}

func TestNeighborsAreClampedAndDistinct(t *testing.T) {
	for _, a := range []Action{
		{Multiple: 1, Increment: 0, IntersendMs: 0},
		{Multiple: 1.3, Increment: 32, IntersendMs: 50},
		{Multiple: 0.3, Increment: 0, IntersendMs: 0},
	} {
		for _, n := range neighbors(a) {
			if n == a {
				t.Errorf("neighbor equals original: %v", n)
			}
			if n != n.clamp() {
				t.Errorf("unclamped neighbor %v", n)
			}
		}
	}
}

func TestHottestCellRespectsTabu(t *testing.T) {
	visits := []int{5, 10, 3}
	if got := hottestCell(visits, map[int]int{}, 0); got != 1 {
		t.Errorf("hottest = %d, want 1", got)
	}
	if got := hottestCell(visits, map[int]int{1: 1}, 2); got != 0 {
		t.Errorf("with tabu, hottest = %d, want 0", got)
	}
	if got := hottestCell([]int{0, 0}, map[int]int{}, 0); got != -1 {
		t.Errorf("no visits should give -1, got %d", got)
	}
}

// Property: refinement preserves the table's function — any memory maps
// to the same action before and after a split.
func TestSplitDimPreservesFunction(t *testing.T) {
	base := DefaultPhiTable()
	f := func(dimRaw uint8, edgeRaw uint16, send, ack, ratio, util float64) bool {
		dim := int(dimRaw) % 4
		edge := float64(edgeRaw%1000) / 10
		if edge <= 0 {
			edge = 0.5
		}
		refined := base.SplitDim(dim, edge)
		if err := refined.Validate(); err != nil {
			return false
		}
		m := Memory{SendEWMAMs: abs(send), AckEWMAMs: abs(ack), RTTRatio: abs(ratio), Util: abs(util)}
		return base.Action(m) == refined.Action(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 || x != x { // also map NaN to 0
		return 0
	}
	if x > 1e9 {
		return 1e9
	}
	return x
}

func TestSplitDimGrowsCells(t *testing.T) {
	base := DefaultTable()
	refined := base.SplitDim(DimRatio, 1.2)
	if refined.Cells() != base.Cells()/3*4 {
		t.Errorf("cells %d -> %d, want one extra ratio bin", base.Cells(), refined.Cells())
	}
	// Duplicate edge: no growth.
	dup := base.SplitDim(DimAck, base.AckEdges[0])
	if dup.Cells() != base.Cells() {
		t.Errorf("duplicate edge grew table to %d", dup.Cells())
	}
	// Original untouched.
	if base.Cells() != 9 {
		t.Errorf("base mutated: %d cells", base.Cells())
	}
}

func TestSplitHottest(t *testing.T) {
	base := DefaultPhiTable()
	visits := make([]int, base.Cells())
	visits[base.Index(Memory{AckEWMAMs: 5, RTTRatio: 1.0, Util: 0.2})] = 100
	refined, ok := base.SplitHottest(visits)
	if !ok {
		t.Fatal("split refused")
	}
	if refined.Cells() <= base.Cells() {
		t.Errorf("cells %d -> %d", base.Cells(), refined.Cells())
	}
	if err := refined.Validate(); err != nil {
		t.Error(err)
	}
	// No visits: refused.
	if _, ok := base.SplitHottest(make([]int, base.Cells())); ok {
		t.Error("split with no visits accepted")
	}
	// Wrong visits length: refused.
	if _, ok := base.SplitHottest([]int{1}); ok {
		t.Error("split with bad visits accepted")
	}
}

func TestTrainWithSplitting(t *testing.T) {
	cfg := TrainConfig{
		Eval:       EvalConfig{Scenario: table3Scenario(3), Mode: UtilOff, Runs: 1, BaseSeed: 4},
		Iterations: 3,
		AllowSplit: true,
	}
	trained, trace := Train(DefaultTable(), cfg)
	if len(trace) != 3 {
		t.Fatalf("trace = %d", len(trace))
	}
	if trained.Cells() <= DefaultTable().Cells() {
		t.Errorf("splitting did not grow the table: %d cells", trained.Cells())
	}
	if err := trained.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	orig := DefaultPhiTable()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cells() != orig.Cells() {
		t.Fatalf("cells %d vs %d", loaded.Cells(), orig.Cells())
	}
	// Same decisions everywhere.
	for _, m := range []Memory{
		{}, {AckEWMAMs: 5, RTTRatio: 1.0, Util: 0.2},
		{AckEWMAMs: 50, RTTRatio: 2.0, Util: 0.9},
		{SendEWMAMs: 3, AckEWMAMs: 20, RTTRatio: 1.2, Util: 0.5},
	} {
		if loaded.Action(m) != orig.Action(m) {
			t.Errorf("decision differs at %+v", m)
		}
	}
}

func TestLoadTableValidates(t *testing.T) {
	// Wrong action count for the declared grid.
	bad := `{"ack_edges":[10,40],"ratio_edges":[1.5],"actions":[{"multiple":1,"increment":1}]}`
	if _, err := LoadTable(strings.NewReader(bad)); err == nil {
		t.Error("structurally invalid table accepted")
	}
	if _, err := LoadTable(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// A trained-then-shipped table loads and drives a CC.
	var buf bytes.Buffer
	if _, err := DefaultTable().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewCC(loaded, nil)
	cc.Init(0)
	if cc.Window() != 2 {
		t.Error("loaded table CC broken")
	}
}
