package repro_test

// The benchmark harness: one benchmark per table and figure of the paper
// (regenerating it end to end with the coarse experiment options), plus
// microbenchmarks of the substrates on their hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks take seconds per iteration by design — they
// run whole simulation campaigns.

import (
	"net"
	"testing"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/experiments"
	"repro/internal/ipfix"
	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/remy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// ---- One benchmark per table / figure ----

func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Defaults.InitialSsthresh != 65536 {
			b.Fatal("bad defaults")
		}
	}
}

func BenchmarkTable2Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2(experiments.Options{Full: true}).Points != 576 {
			b.Fatal("bad grid")
		}
	}
}

func BenchmarkFig2aLowUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2a(experiments.Options{Seed: int64(i)})
		gain, _, _, _ := f.Improvement()
		b.ReportMetric(gain, "thr-gain")
	}
}

func BenchmarkFig2bHighUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2b(experiments.Options{Seed: int64(i)})
		_, _, lossDef, _ := f.Improvement()
		b.ReportMetric(100*lossDef, "default-loss-%")
	}
}

func BenchmarkFig2cLongRunning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2c(experiments.Options{Seed: int64(i)})
		b.ReportMetric(f.Utilization, "utilization")
	}
}

func BenchmarkFig3Stability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(experiments.Options{Seed: int64(i)})
		b.ReportMetric(r.CommonGainOverDefault(), "common-gain")
	}
}

func BenchmarkFig4Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(experiments.Options{Seed: int64(i)})
		b.ReportMetric(r.Modified.MeanPower(), "modified-power")
	}
}

func BenchmarkTable3Remy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(experiments.Options{Seed: int64(i)}, false)
		if row := r.Row("Remy-Phi-ideal"); row != nil {
			b.ReportMetric(row.Objective, "ideal-objective")
		}
	}
}

func BenchmarkFig5Diagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(experiments.Options{Seed: int64(i)})
		if r.Best == nil {
			b.Fatal("event not detected")
		}
	}
}

func BenchmarkFlowSharingCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Sharing(experiments.Options{Seed: int64(i)})
		b.ReportMetric(100*r.AtLeast5, "share>=5-%")
	}
}

func BenchmarkAblationCadence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationCadence(experiments.Options{Seed: int64(i)})
		if row := r.Row("oracle (continuous)"); row != nil {
			b.ReportMetric(row.Power, "oracle-power")
		}
	}
}

func BenchmarkAblationBuckets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.AblationBuckets(experiments.Options{Seed: int64(i)}).Rows) != 3 {
			b.Fatal("bad ablation")
		}
	}
}

func BenchmarkAblationQueueDiscipline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.AblationQueueDiscipline(experiments.Options{Seed: int64(i)}).Rows) != 2 {
			b.Fatal("bad ablation")
		}
	}
}

// ---- Substrate microbenchmarks ----

func BenchmarkSimEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Millisecond, func() {})
		if eng.Len() > 1024 {
			eng.RunUntil(eng.Now() + 10*sim.Second)
		}
	}
	eng.Run()
}

func BenchmarkLinkForwarding(b *testing.B) {
	eng := sim.NewEngine()
	var delivered int
	l := sim.NewLink(eng, "l", 1_000_000_000, sim.Microsecond, 1<<20, recvFunc(func(p *sim.Packet) { delivered++ }))
	p := &sim.Packet{Size: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(p)
		if l.QueuedPackets() > 256 {
			eng.Run()
		}
	}
	eng.Run()
}

type recvFunc func(p *sim.Packet)

func (f recvFunc) Receive(p *sim.Packet) { f(p) }

// BenchmarkTCPTransfer10MB measures a full 10 MB transfer (packet-level,
// including SACK bookkeeping) across the default dumbbell.
func BenchmarkTCPTransfer10MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
		snd, _ := tcp.Connect(eng, 1, d.Senders[0], d.Receivers[0], 10_000_000,
			tcp.NewCubic(tcp.DefaultCubicParams()), tcp.Config{})
		snd.Start()
		eng.RunUntil(300 * sim.Second)
		if !snd.Done() {
			b.Fatal("transfer incomplete")
		}
	}
}

func BenchmarkCubicOnAck(b *testing.B) {
	cc := tcp.NewCubic(tcp.DefaultCubicParams())
	cc.Init(0)
	info := tcp.AckInfo{RTT: 100 * sim.Millisecond, AckedSegments: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info.Now = sim.Time(i) * sim.Microsecond
		cc.OnAck(info)
	}
}

func BenchmarkRemyOnAck(b *testing.B) {
	cc := remy.NewCC(remy.DefaultPhiTable(), remy.StaticUtil(0.5))
	cc.Init(0)
	info := tcp.AckInfo{RTT: 100 * sim.Millisecond, AckedSegments: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info.Now = sim.Time(i) * sim.Microsecond
		info.SentAt = info.Now - 100*sim.Millisecond
		cc.OnAck(info)
	}
}

func BenchmarkScenarioRun(b *testing.B) {
	sc := workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(4),
		MeanOnBytes: 100_000,
		MeanOffTime: 500 * sim.Millisecond,
		Duration:    20 * sim.Second,
		CC: func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
		},
	}
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i)
		r := workload.Run(sc)
		if len(r.Flows) == 0 {
			b.Fatal("no flows")
		}
	}
}

func BenchmarkContextServerLookup(b *testing.B) {
	srv := phi.NewServer(func() sim.Time { return 0 }, phi.ServerConfig{})
	srv.RegisterPath("p", 1_000_000)
	_ = srv.ReportStart("p")
	_ = srv.ReportEnd("p", phi.Report{Bytes: 1000, AvgRTT: 160 * sim.Millisecond, MinRTT: 150 * sim.Millisecond})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Lookup("p"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireLookupRoundTrip(b *testing.B) {
	backend := phi.NewServer(func() sim.Time { return sim.Time(time.Now().UnixNano()) }, phi.ServerConfig{})
	srv := phiwire.NewServer(backend, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	client := phiwire.Dial(ln.Addr().String(), time.Second)
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Lookup("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPFIXEncode(b *testing.B) {
	cfg := ipfix.DefaultSynthConfig()
	cfg.Flows = 10000
	records := ipfix.Generate(cfg, 1)[:500]
	enc := ipfix.NewEncoder(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(uint32(i), records); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(records)))
}

func BenchmarkIPFIXDecode(b *testing.B) {
	cfg := ipfix.DefaultSynthConfig()
	cfg.Flows = 10000
	records := ipfix.Generate(cfg, 1)[:500]
	enc := ipfix.NewEncoder(1)
	msg, err := enc.Encode(0, records)
	if err != nil {
		b.Fatal(err)
	}
	dec := ipfix.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(records)))
}

func BenchmarkDiagnosisScan(b *testing.B) {
	cfg := diagnosis.DefaultGenConfig()
	cfg.Outage = &diagnosis.Outage{ISP: "isp-1", Metro: "london",
		StartMinute: 3000, DurationMin: 120, Severity: 0.9}
	store := diagnosis.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(diagnosis.Scan(store, diagnosis.DetectConfig{})) == 0 {
			b.Fatal("no findings")
		}
	}
}

func BenchmarkSharingAnalysis(b *testing.B) {
	cfg := ipfix.DefaultSynthConfig()
	cfg.Flows = 50000
	records := ipfix.Generate(cfg, ipfix.DefaultSamplingRate)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ipfix.AnalyzeSharing(records)
		if a.Slices == 0 {
			b.Fatal("no slices")
		}
	}
}
