# Phi — reproduction of "Rethinking Networking for 'Five Computers'"
# (HotNets 2018). Standard targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench experiments experiments-full examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed on the files above" && exit 1)

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure (coarse ~ minutes).
experiments:
	$(GO) run ./cmd/phi-experiments -run all

# Paper-scale configuration (full Table 2 grid, n = 8; slow).
experiments-full:
	$(GO) run ./cmd/phi-experiments -run all -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cdnstream
	$(GO) run ./examples/outage
	$(GO) run ./examples/forecast
	$(GO) run ./examples/wirephi
	$(GO) run ./examples/interdc

clean:
	$(GO) clean ./...
