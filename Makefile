# Phi — reproduction of "Rethinking Networking for 'Five Computers'"
# (HotNets 2018). Standard targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet race cover test test-short bench experiments experiments-full examples clean

all: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed on the files above" && exit 1)

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full test suite under the race detector (includes the phi/cluster
# concurrency stress tests, which only bite with -race on).
race:
	$(GO) test -race ./...

# Coverage summary across every package.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure (coarse ~ minutes).
experiments:
	$(GO) run ./cmd/phi-experiments -run all

# Paper-scale configuration (full Table 2 grid, n = 8; slow).
experiments-full:
	$(GO) run ./cmd/phi-experiments -run all -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cdnstream
	$(GO) run ./examples/outage
	$(GO) run ./examples/forecast
	$(GO) run ./examples/wirephi
	$(GO) run ./examples/interdc

clean:
	$(GO) clean ./...
	rm -f coverage.out
