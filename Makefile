# Phi — reproduction of "Rethinking Networking for 'Five Computers'"
# (HotNets 2018). Standard targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet race cover test test-short bench bench-smoke bench-sim bench-ingest fuzz-smoke alloc-gate load saturate saturate-smoke bench-diff ingest-demo trace-demo health-demo chaos-demo experiments experiments-full experiments-compare golden-manifest examples clean

all: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed on the files above" && exit 1)

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full test suite under the race detector (includes the phi/cluster
# concurrency stress tests, which only bite with -race on).
race:
	$(GO) test -race ./...

# Coverage summary across every package.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Microbenchmarks: the per-figure harnesses in the root package plus the
# substrate benches — telemetry record path, phiwire encode/decode and
# handler, phi.Server instrumented-vs-bare lookup/report.
bench:
	$(GO) test -bench=. -benchmem . ./internal/telemetry ./internal/phiwire ./internal/phi

# Seed load-generation run: drive a local 4-shard phi-cluster for 30s
# open-loop at 2000 lifecycles/s and write BENCH_loadgen.json
# (DESIGN.md §8.3). Fixed seed so reruns are comparable.
load:
	$(GO) build -o /tmp/phi-load-bench-cluster ./cmd/phi-cluster
	$(GO) build -o /tmp/phi-load-bench-load ./cmd/phi-load
	/tmp/phi-load-bench-cluster -listen 127.0.0.1:7731 -shards 4 \
		-metrics-addr 127.0.0.1:7732 & \
	CLUSTER=$$!; trap 'kill $$CLUSTER' EXIT; sleep 1; \
	/tmp/phi-load-bench-load -addr 127.0.0.1:7731 -mode open -rate 2000 \
		-duration 30s -warmup 2s -paths 64 -skew zipf -seed 42 \
		-out BENCH_loadgen.json

# Find the ceiling (DESIGN.md §14): ramp the offered rate against a
# local 4-shard cluster until the online knee detector confirms the p99
# knee, then capture CPU/heap profiles at the knee and the server's
# per-stage latency decomposition. Writes BENCH_saturation.json (with
# per-step allocs/op and frames-per-syscall efficiency attribution) plus
# results/BENCH_saturation_{cpu,heap}.pprof. Fixed seed so reruns are
# comparable. Add -trace to the phi-load line for the client-side stage
# decomposition too (it costs roughly half the measured ceiling on one
# core, so the committed baseline runs without it).
saturate:
	$(GO) build -o /tmp/phi-sat-cluster ./cmd/phi-cluster
	$(GO) build -o /tmp/phi-sat-load ./cmd/phi-load
	/tmp/phi-sat-cluster -listen 127.0.0.1:7731 -shards 4 \
		-metrics-addr 127.0.0.1:7732 -stages & \
	CLUSTER=$$!; trap 'kill $$CLUSTER' EXIT; sleep 1; \
	/tmp/phi-sat-load -addr 127.0.0.1:7731 -mode saturate \
		-sat-start 2000 -sat-factor 1.5 -sat-step 5s -sat-settle 1s \
		-paths 64 -skew zipf -seed 42 \
		-pprof-url http://127.0.0.1:7732 -profile-dur 5s \
		-profile-prefix results/BENCH_saturation \
		-stages-url http://127.0.0.1:7732/debug/stages \
		-resources-url http://127.0.0.1:7732/debug/resources \
		-context-url http://127.0.0.1:7732/debug/context \
		-out BENCH_saturation.json

# CI-scale saturation smoke (~20s): a short coarse ramp that must still
# find a knee; the result lands in /tmp for bench-diff to gate.
saturate-smoke:
	$(GO) build -o /tmp/phi-sat-cluster ./cmd/phi-cluster
	$(GO) build -o /tmp/phi-sat-load ./cmd/phi-load
	/tmp/phi-sat-cluster -listen 127.0.0.1:7731 -shards 4 \
		-metrics-addr 127.0.0.1:7732 -stages & \
	CLUSTER=$$!; trap 'kill $$CLUSTER' EXIT; sleep 1; \
	/tmp/phi-sat-load -addr 127.0.0.1:7731 -mode saturate \
		-sat-start 2000 -sat-factor 2.0 -sat-step 2s -sat-settle 500ms \
		-paths 64 -skew zipf -seed 42 \
		-stages-url http://127.0.0.1:7732/debug/stages \
		-resources-url http://127.0.0.1:7732/debug/resources \
		-context-url http://127.0.0.1:7732/debug/context \
		-out /tmp/phi_saturation_smoke.json

# Gate a candidate result against the committed baseline. Smoke runs on
# shared CI machines wobble, so the default tolerances are generous; the
# floor that really matters is -min-rate: the knee must stay above the
# old fixed-rate pin of 2000 lifecycles/s, and a knee must exist at all.
#   make bench-diff NEW=/tmp/phi_saturation_smoke.json
NEW ?= /tmp/phi_saturation_smoke.json
bench-diff:
	$(GO) run ./cmd/phi-bench-diff -old BENCH_saturation.json -new $(NEW) \
		-tol-rate 0.6 -tol-latency 4.0 -tol-eff 0.5 -tol-quality 0.5 \
		-require-knee -min-rate 2000

# Zero-alloc regression gate: the pinned allocs/op tests for the
# phi.Server hot path and the phiwire codec (TestAllocs* in
# internal/phi and internal/phiwire). Fails the moment a change makes
# Lookup allocate or grows a codec's per-frame allocation count.
alloc-gate:
	$(GO) test -run 'TestAllocs' -count=1 ./internal/phi ./internal/phiwire

# One benchmark iteration per function: catches benchmarks that no
# longer compile or crash, without paying for real measurement (CI runs
# this on every push).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Short fuzzing burst over the phiwire and ipfix codec fuzzers (CI runs
# this on every push; crank -fuzztime locally for a real campaign).
fuzz-smoke:
	for target in FuzzHandle FuzzDecodeReportEnd FuzzReadFrame FuzzReadString; do \
		$(GO) test -run=NONE -fuzz="^$$target$$" -fuzztime=10s ./internal/phiwire || exit 1; \
	done
	$(GO) test -run=NONE -fuzz='^FuzzDecodeIPFIX$$' -fuzztime=10s ./internal/ipfix

# Passive-ingest pipeline benchmark (DESIGN.md §12): decode + track +
# report throughput against a real phi.Server, best of 5 in-process
# reps, plus the counted-drop shed behavior at 2x that rate, written to
# BENCH_ingest.json. Fixed seed so reruns are comparable.
bench-ingest:
	$(GO) run ./cmd/phi-load -mode ipfixbench -bench-reps 5 -seed 42 \
		-out BENCH_ingest.json

# Passive-ingest demo: a phi-server with the IPFIX collector on, a 5s
# synthetic export flood (no cooperative senders at all), then the
# reconstructed per-path state at /debug/ingest — the context server
# learns RTT, loss, and throughput per path purely from the exports.
ingest-demo:
	$(GO) build -o /tmp/phi-ingest-server ./cmd/phi-server
	$(GO) build -o /tmp/phi-ingest-load ./cmd/phi-load
	/tmp/phi-ingest-server -listen 127.0.0.1:7731 -metrics-addr 127.0.0.1:7732 \
		-ipfix-addr 127.0.0.1:4739 -ipfix-window 1s & \
	SERVER=$$!; trap 'kill $$SERVER' EXIT; sleep 1; \
	/tmp/phi-ingest-load -mode ipfix -ipfix-addr 127.0.0.1:4739 \
		-duration 5s -ipfix-rate 500000 -seed 42 -out /tmp/phi-ingest-demo.json; \
	sleep 1; \
	echo "--- /debug/ingest after the flood ---"; \
	curl -s 'http://127.0.0.1:7732/debug/ingest?format=text'; \
	echo "--- passive reports folded into the server ---"; \
	curl -s http://127.0.0.1:7732/metrics | grep -E 'phi_server_passive|phi_ingest_reports'

# End-to-end tracing demo: a traced 4-shard cluster under 10s of traced
# load, a mid-run shard crash, then the retained traces — the failover
# shows up as error-class traces whose spans carry failover/breaker
# notes. Inspect further at http://127.0.0.1:7732/debug/traces.
trace-demo:
	$(GO) build -o /tmp/phi-demo-cluster ./cmd/phi-cluster
	$(GO) build -o /tmp/phi-demo-load ./cmd/phi-load
	/tmp/phi-demo-cluster -listen 127.0.0.1:7731 -shards 4 \
		-metrics-addr 127.0.0.1:7732 -trace & \
	CLUSTER=$$!; trap 'kill $$CLUSTER' EXIT; sleep 1; \
	/tmp/phi-demo-load -addr 127.0.0.1:7731 -mode open -rate 2000 \
		-duration 10s -warmup 1s -paths 64 -skew zipf -seed 42 -trace & \
	LOAD=$$!; sleep 4; \
	echo "--- crashing shard 0 mid-load ---"; \
	curl -s 'http://127.0.0.1:7732/debug/shard?id=0&op=crash'; sleep 2; \
	curl -s 'http://127.0.0.1:7732/debug/shard?id=0&op=restart'; \
	wait $$LOAD; \
	echo "--- error-class traces (failover story) ---"; \
	curl -s 'http://127.0.0.1:7732/debug/traces?view=errors&format=text' | head -40; \
	echo "--- slowest traces ---"; \
	curl -s 'http://127.0.0.1:7732/debug/traces?view=slowest&format=text' | head -20

# Live health-monitoring demo (DESIGN.md §10): a 4-shard cluster with
# the health monitor on, grid-structured load, and a mid-run fault that
# silences one service/ISP/metro slice of the workload — the Figure 5
# outage story played live. The server detects the volume dip, localizes
# it, and surfaces it at /debug/health; phi-load polls that endpoint and
# reports detection and time-to-detect in its JSON summary. The fault
# lands after the monitor's warmup (10 x 1s buckets, so the baseline is
# established) and past its diagnosis period (20 buckets, so
# localization has the history it needs).
health-demo:
	$(GO) build -o /tmp/phi-health-cluster ./cmd/phi-cluster
	$(GO) build -o /tmp/phi-health-load ./cmd/phi-load
	/tmp/phi-health-cluster -listen 127.0.0.1:7731 -shards 4 \
		-metrics-addr 127.0.0.1:7732 -health & \
	CLUSTER=$$!; trap 'kill $$CLUSTER' EXIT; sleep 1; \
	/tmp/phi-health-load -addr 127.0.0.1:7731 -mode open -rate 2000 \
		-duration 40s -warmup 2s -paths 64 -grid 1x4x4 -seed 42 \
		-fault-match isp-1/metro-1 -fault-after 24s -fault-for 12s \
		-health-url http://127.0.0.1:7732/debug/health \
		-out /tmp/phi-health-demo.json; \
	echo "--- /debug/health after the run ---"; \
	curl -s 'http://127.0.0.1:7732/debug/health?format=text'; \
	echo "--- phi-load fault injection and detection summary ---"; \
	sed -n '/"fault":/,$$p' /tmp/phi-health-demo.json

# Fleet chaos demo (DESIGN.md §13): a replicated 4-shard fleet with the
# remediation controller on, open-loop load, and a kill schedule driven
# over the wire — phi-load kills a primary through /debug/fleet every
# few seconds, waits for the controller alone to repair it, and exits
# non-zero unless every kill auto-remediated inside -chaos-bound with
# zero lost lifecycles. The /debug/fleet dump afterwards shows the
# promotions and the controller's audit trail.
chaos-demo:
	$(GO) build -o /tmp/phi-chaos-cluster ./cmd/phi-cluster
	$(GO) build -o /tmp/phi-chaos-load ./cmd/phi-load
	/tmp/phi-chaos-cluster -listen 127.0.0.1:7731 -shards 4 -fleet \
		-fleet-poll 100ms -fleet-sync 2s -metrics-addr 127.0.0.1:7732 & \
	CLUSTER=$$!; trap 'kill $$CLUSTER' EXIT; sleep 1; \
	/tmp/phi-chaos-load -addr 127.0.0.1:7731 -mode open -rate 1000 \
		-duration 20s -warmup 1s -paths 64 -skew zipf -seed 42 \
		-chaos -chaos-url http://127.0.0.1:7732/debug/fleet \
		-chaos-first 3s -chaos-every 3s -chaos-kills 3 -chaos-bound 5s \
		-out /tmp/phi-chaos-demo.json; \
	echo "--- /debug/fleet after the run ---"; \
	curl -s 'http://127.0.0.1:7732/debug/fleet?format=text'; \
	echo "--- chaos schedule summary ---"; \
	sed -n '/"chaos":/,$$p' /tmp/phi-chaos-demo.json

# Simulator throughput benchmark: the fixed reference scenario with the
# time-series probe detached vs attached, written to BENCH_sim.json
# (engine events/sec per arm plus the overhead fraction; budget 5%).
# Fixed seed so reruns are comparable.
bench-sim:
	$(GO) run ./cmd/phi-sim -senders 8 -duration 300s -seed 42 \
		-probe-interval 100ms -bench-reps 12 -bench-out BENCH_sim.json

# Regenerate every table and figure (coarse ~ minutes). Each run also
# writes results/manifest_all.json; watch a run live with
#   go run ./cmd/phi-experiments -run all -status-addr :9100
# and curl http://localhost:9100/debug/experiments?format=text
experiments:
	$(GO) run ./cmd/phi-experiments -run all

# Paper-scale configuration (full Table 2 grid, n = 8; slow).
experiments-full:
	$(GO) run ./cmd/phi-experiments -run all -full

# Golden-manifest subset: the fast experiments CI re-runs on every push.
GOLDEN_RUN = table1,table2,fig2a,fig5,sharing
GOLDEN_MANIFEST = results/manifest_golden_coarse.json

# Re-record the committed golden manifest (after an intentional change
# to simulation results, review the metric diff before committing).
golden-manifest:
	$(GO) run ./cmd/phi-experiments -run $(GOLDEN_RUN) -manifest $(GOLDEN_MANIFEST)

# Reproducibility check: re-run the golden configuration and fail if any
# recorded metric drifts beyond tolerance (CI runs this on every push).
experiments-compare:
	$(GO) run ./cmd/phi-experiments -compare $(GOLDEN_MANIFEST)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cdnstream
	$(GO) run ./examples/outage
	$(GO) run ./examples/forecast
	$(GO) run ./examples/wirephi
	$(GO) run ./examples/interdc

clean:
	$(GO) clean ./...
	rm -f coverage.out
