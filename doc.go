// Package repro is a from-scratch Go reproduction of "Rethinking
// Networking for 'Five Computers'" (Renganathan, Padmanabhan, Nambi —
// HotNets-XVII, 2018): the Phi proposal for sharing network state and
// coordinating congestion control across the senders of a large cloud
// provider.
//
// The repository contains the complete system the paper describes plus
// every substrate it depends on, all on the standard library only:
//
//   - internal/sim        — deterministic packet-level network simulator
//   - internal/tcp        — TCP with SACK recovery; CUBIC and NewReno
//   - internal/workload   — the paper's on/off and persistent traffic models
//   - internal/metrics    — the power metric P, P_l, ln(P); quantiles, CDFs
//   - internal/phi        — the core contribution: congestion context,
//     context server, parameter policies, sweeps
//   - internal/phiwire    — the context-server protocol over real TCP
//   - internal/remy       — Remy-style learned congestion control and the
//     Phi utilization extension (Table 3)
//   - internal/ipfix      — RFC 7011-subset codec, 1:4096 sampling, the
//     Section 2.1 flow-sharing analysis
//   - internal/diagnosis  — sliced telemetry, anomaly detection, outage
//     localization (Figure 5)
//   - internal/predict    — performance prediction (Section 3.5)
//   - internal/priority   — weighted ensembles across flows (Section 3.3)
//   - internal/experiments — regenerates every table and figure
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results next to the paper's. The benchmarks in bench_test.go regenerate
// each table and figure; cmd/phi-experiments prints them.
package repro
